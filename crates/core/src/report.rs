//! Experiment execution and reporting: run pipelines over instance sets,
//! collect per-instance records, and derive the paper's plots/tables
//! (cactus curves, totals, Table-I statistics).

use crate::pipeline::Pipeline;
use aig::Aig;
use sat::{solve_cnf, Budget, SolveResult, SolverConfig, Stats};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use workloads::Instance;

/// Outcome of one (pipeline, instance, solver) run.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub enum Status {
    /// Satisfiable, with model validity against the original circuit.
    Sat {
        /// Whether the decoded model satisfies the original instance.
        model_valid: bool,
    },
    /// Unsatisfiable.
    Unsat,
    /// Budget exhausted (the paper's TO).
    Timeout,
}

/// One run record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunRecord {
    /// Instance name.
    pub instance: String,
    /// Pipeline name.
    pub pipeline: String,
    /// Solver preset name.
    pub solver: String,
    /// Outcome.
    pub status: Status,
    /// Branching decisions (the paper's core metric).
    pub decisions: u64,
    /// Conflicts.
    pub conflicts: u64,
    /// CNF variables handed to the solver.
    pub cnf_vars: u32,
    /// CNF clauses handed to the solver.
    pub cnf_clauses: usize,
    /// Preprocessing seconds (RL inference + transformation time).
    pub preprocess_secs: f64,
    /// Solving seconds.
    pub solve_secs: f64,
    /// Executed synthesis recipe.
    pub recipe: String,
}

impl RunRecord {
    /// Total runtime of the run (preprocess + solve), as the paper reports.
    pub fn total_secs(&self) -> f64 {
        self.preprocess_secs + self.solve_secs
    }

    /// True when the run finished within budget.
    pub fn solved(&self) -> bool {
        !matches!(self.status, Status::Timeout)
    }
}

/// Runs one pipeline on one instance with one solver preset.
pub fn run_one(
    pipeline: &dyn Pipeline,
    instance: &Instance,
    solver_name: &str,
    solver: &SolverConfig,
    budget: Budget,
) -> RunRecord {
    let pre = pipeline.preprocess(&instance.aig);
    let t0 = Instant::now();
    let (result, stats) = solve_cnf(&pre.cnf, solver.clone(), budget);
    let solve_secs = t0.elapsed().as_secs_f64();
    let status = classify(&instance.aig, &pre, &result, instance.expected);
    let Stats {
        decisions,
        conflicts,
        ..
    } = stats;
    RunRecord {
        instance: instance.name.clone(),
        pipeline: pipeline.name(),
        solver: solver_name.to_string(),
        status,
        decisions,
        conflicts,
        cnf_vars: pre.cnf.num_vars(),
        cnf_clauses: pre.cnf.num_clauses(),
        preprocess_secs: pre.preprocess_time.as_secs_f64(),
        solve_secs,
        recipe: pre.recipe,
    }
}

fn classify(
    aig: &Aig,
    pre: &crate::pipeline::PreprocessResult,
    result: &SolveResult,
    expected: Option<bool>,
) -> Status {
    match result {
        SolveResult::Sat(model) => {
            let ins = pre.decoder.decode_inputs(model);
            let outs = aig.eval(&ins);
            let model_valid = outs.iter().any(|&o| o);
            debug_assert!(model_valid, "decoded model must satisfy the instance");
            if let Some(false) = expected {
                debug_assert!(false, "instance labelled UNSAT produced a model");
            }
            Status::Sat { model_valid }
        }
        SolveResult::Unsat => {
            if let Some(true) = expected {
                debug_assert!(false, "instance labelled SAT proved UNSAT");
            }
            Status::Unsat
        }
        SolveResult::Unknown => Status::Timeout,
    }
}

/// Runs a pipeline over a whole instance set.
pub fn run_campaign(
    pipeline: &dyn Pipeline,
    instances: &[Instance],
    solver_name: &str,
    solver: &SolverConfig,
    budget: Budget,
) -> Vec<RunRecord> {
    instances
        .iter()
        .map(|inst| run_one(pipeline, inst, solver_name, solver, budget.clone()))
        .collect()
}

/// Cactus-plot data: after sorting solved runs by total runtime, point `i`
/// is (cumulative seconds, instances solved). This is exactly the paper's
/// Fig. 4/5 presentation.
pub fn cactus(records: &[RunRecord]) -> Vec<(f64, usize)> {
    let mut times: Vec<f64> = records
        .iter()
        .filter(|r| r.solved())
        .map(RunRecord::total_secs)
        .collect();
    times.sort_by(f64::total_cmp);
    let mut out = Vec::with_capacity(times.len());
    let mut acc = 0.0;
    for (i, t) in times.into_iter().enumerate() {
        acc += t;
        out.push((acc, i + 1));
    }
    out
}

/// Total runtime with time-outs charged at `penalty_secs` (the paper uses
/// the 1000 s limit itself).
pub fn total_runtime(records: &[RunRecord], penalty_secs: f64) -> f64 {
    records
        .iter()
        .map(|r| {
            if r.solved() {
                r.total_secs()
            } else {
                penalty_secs
            }
        })
        .sum()
}

/// Total branching decisions across a campaign.
pub fn total_decisions(records: &[RunRecord]) -> u64 {
    records.iter().map(|r| r.decisions).sum()
}

/// Avg/Std/Min/Max summary of a sample (Table I's row format).
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct Summary {
    /// Mean.
    pub avg: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes a [`Summary`]; returns zeros on an empty sample.
pub fn summarize(xs: &[f64]) -> Summary {
    if xs.is_empty() {
        return Summary {
            avg: 0.0,
            std: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let n = xs.len() as f64;
    let avg = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - avg) * (x - avg)).sum::<f64>() / n;
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Summary {
        avg,
        std: var.sqrt(),
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselinePipeline;
    use workloads::dataset::{generate, DatasetParams};

    #[test]
    fn campaign_produces_valid_records() {
        let set = generate(
            &DatasetParams {
                count: 4,
                min_bits: 4,
                max_bits: 6,
                hard_multipliers: false,
            },
            8,
        );
        let records = run_campaign(
            &BaselinePipeline,
            &set,
            "kissat",
            &SolverConfig::kissat_like(),
            Budget::conflicts(200_000),
        );
        assert_eq!(records.len(), 4);
        for r in &records {
            match &r.status {
                Status::Sat { model_valid } => assert!(model_valid, "{}", r.instance),
                Status::Unsat | Status::Timeout => {}
            }
            assert!(r.cnf_vars > 0);
        }
    }

    #[test]
    fn cactus_monotone() {
        let set = generate(
            &DatasetParams {
                count: 5,
                min_bits: 4,
                max_bits: 6,
                hard_multipliers: false,
            },
            9,
        );
        let records = run_campaign(
            &BaselinePipeline,
            &set,
            "kissat",
            &SolverConfig::kissat_like(),
            Budget::conflicts(200_000),
        );
        let c = cactus(&records);
        assert!(!c.is_empty());
        for w in c.windows(2) {
            assert!(w[1].0 >= w[0].0, "cumulative time must not decrease");
            assert_eq!(w[1].1, w[0].1 + 1);
        }
    }

    #[test]
    fn summary_stats() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.avg, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - 1.118).abs() < 1e-3);
        let empty = summarize(&[]);
        assert_eq!(empty.avg, 0.0);
    }

    #[test]
    fn timeout_penalty_applied() {
        let records = vec![RunRecord {
            instance: "x".into(),
            pipeline: "p".into(),
            solver: "s".into(),
            status: Status::Timeout,
            decisions: 10,
            conflicts: 10,
            cnf_vars: 1,
            cnf_clauses: 1,
            preprocess_secs: 0.1,
            solve_secs: 0.5,
            recipe: String::new(),
        }];
        assert_eq!(total_runtime(&records, 1000.0), 1000.0);
    }
}
