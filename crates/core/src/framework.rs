//! The paper's preprocessing framework — Algorithm 1.
//!
//! ```text
//! Input:  circuit instance G_in
//! 1. G0   <- aigmap(G_in)                 (already an AIG here)
//! 2. Gt   <- RL-guided synthesis recipe   (Sec. III-B)
//! 3. GLUT <- cost-customised LUT mapping  (Sec. III-C)
//! 4. phi  <- lut2cnf(GLUT)
//! ```
//!
//! The pipeline is generic over the recipe policy (trained agent, random,
//! fixed, none) and the mapping cost (branching vs. area), which yields all
//! arms of the evaluation: *Ours*, *w/o RL*, and *C. Mapper*.

use crate::pipeline::{Decoder, Pipeline, PreprocessResult};
use aig::Aig;
use cnf::lut_to_cnf_sat_instance;
use mapper::{map_luts, AreaCost, BranchingCost, CutCost, MapParams};
use rl::{EnvConfig, RecipePolicy};
use std::time::Instant;

/// Which cut-cost model the mapper uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MappingCost {
    /// The paper's branching-complexity cost.
    Branching,
    /// Conventional area cost (the *C. Mapper* ablation).
    Area,
}

/// The EDA-driven preprocessing framework.
#[derive(Clone, Debug)]
pub struct FrameworkPipeline {
    /// Recipe-selection policy.
    pub policy: RecipePolicy,
    /// Environment settings for agent rollouts.
    pub env: EnvConfig,
    /// Mapping parameters.
    pub map: MapParams,
    /// Mapping cost model.
    pub cost: MappingCost,
    /// Optional SAT sweeping (fraig) between synthesis and mapping — the
    /// "future work" extension arm; `None` reproduces the paper exactly.
    pub sweep: Option<sweep::FraigParams>,
    /// Display name override.
    pub label: String,
}

impl FrameworkPipeline {
    /// The full framework (*Ours*): the given policy + branching-cost
    /// mapping.
    pub fn ours(policy: RecipePolicy) -> FrameworkPipeline {
        FrameworkPipeline {
            policy,
            env: EnvConfig::default(),
            map: MapParams::default(),
            cost: MappingCost::Branching,
            sweep: None,
            label: "Ours".to_string(),
        }
    }

    /// The *w/o RL* ablation: random recipe, branching-cost mapping.
    pub fn without_rl(seed: u64, steps: usize) -> FrameworkPipeline {
        FrameworkPipeline {
            policy: RecipePolicy::Random { seed, steps },
            env: EnvConfig::default(),
            map: MapParams::default(),
            cost: MappingCost::Branching,
            sweep: None,
            label: "w/o RL".to_string(),
        }
    }

    /// The *C. Mapper* ablation: same policy, conventional area cost.
    pub fn conventional_mapper(policy: RecipePolicy) -> FrameworkPipeline {
        FrameworkPipeline {
            policy,
            env: EnvConfig::default(),
            map: MapParams::default(),
            cost: MappingCost::Area,
            sweep: None,
            label: "C. Mapper".to_string(),
        }
    }

    /// Enables SAT sweeping (fraig) between synthesis and mapping.
    ///
    /// This is the extension arm (*Ours + fraig*): functionally redundant
    /// logic that no local synthesis window can see — e.g. the two halves
    /// of an equivalence miter — is merged before mapping, at the price of
    /// budgeted SAT calls during preprocessing.
    pub fn with_sweep(mut self, params: sweep::FraigParams) -> FrameworkPipeline {
        self.sweep = Some(params);
        self.label = format!("{} + fraig", self.label);
        self
    }
}

impl Pipeline for FrameworkPipeline {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn preprocess(&self, instance: &Aig) -> PreprocessResult {
        let t0 = Instant::now();
        // Step 2: recipe exploration / application.
        let (synthesised, recipe) = self.policy.run(instance, &self.env);
        // Step 2.5 (extension): SAT sweeping.
        let synthesised = match &self.sweep {
            Some(params) => sweep::fraig(&synthesised, params).aig,
            None => synthesised,
        };
        // Step 3: cost-customised LUT mapping.
        let area;
        let branching;
        let cost: &dyn CutCost = match self.cost {
            MappingCost::Area => {
                area = AreaCost;
                &area
            }
            MappingCost::Branching => {
                branching = BranchingCost::new();
                &branching
            }
        };
        let net = map_luts(&synthesised, &self.map, cost);
        // Step 4: lut2cnf.
        let (cnf, map) = lut_to_cnf_sat_instance(&net);
        PreprocessResult {
            cnf,
            decoder: Decoder::Lut(map),
            preprocess_time: t0.elapsed(),
            recipe: recipe.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::{solve_cnf, Budget, SolverConfig};
    use synth::Recipe;
    use workloads::datapath::{carry_lookahead_adder, ripple_carry_adder};
    use workloads::lec::{inject_bug, miter};

    fn sat_instance() -> Aig {
        let blk = ripple_carry_adder(4);
        let buggy = inject_bug(&blk.aig, 5, 50).expect("bug");
        miter(&blk.aig, &buggy)
    }

    fn unsat_instance() -> Aig {
        let a = ripple_carry_adder(4);
        let b = carry_lookahead_adder(4);
        miter(&a.aig, &b.aig)
    }

    #[test]
    fn all_arms_preserve_satisfiability() {
        let sat_inst = sat_instance();
        let unsat_inst = unsat_instance();
        let arms: Vec<FrameworkPipeline> = vec![
            FrameworkPipeline::ours(RecipePolicy::Fixed(Recipe::size_script())),
            FrameworkPipeline::without_rl(3, 4),
            FrameworkPipeline::conventional_mapper(RecipePolicy::Fixed(Recipe::size_script())),
        ];
        for arm in &arms {
            let out = arm.preprocess(&sat_inst);
            let (res, _) = solve_cnf(&out.cnf, SolverConfig::default(), Budget::UNLIMITED);
            let model = res
                .model()
                .unwrap_or_else(|| panic!("{} lost SAT", arm.name()))
                .to_vec();
            let ins = out.decoder.decode_inputs(&model);
            assert_eq!(
                sat_inst.eval(&ins),
                vec![true],
                "{} model invalid",
                arm.name()
            );

            let out = arm.preprocess(&unsat_inst);
            let (res, _) = solve_cnf(&out.cnf, SolverConfig::default(), Budget::UNLIMITED);
            assert!(res.is_unsat(), "{} lost UNSAT", arm.name());
        }
    }

    #[test]
    fn framework_reduces_cnf_size() {
        let inst = unsat_instance();
        let base = crate::baseline::BaselinePipeline.preprocess(&inst);
        let ours =
            FrameworkPipeline::ours(RecipePolicy::Fixed(Recipe::size_script())).preprocess(&inst);
        assert!(
            ours.cnf.num_vars() < base.cnf.num_vars(),
            "{} vs {}",
            ours.cnf.num_vars(),
            base.cnf.num_vars()
        );
    }

    #[test]
    fn sweep_arm_preserves_verdicts_and_shrinks_unsat_miters() {
        let unsat_inst = unsat_instance();
        let plain = FrameworkPipeline::ours(RecipePolicy::Fixed(Recipe::size_script()));
        let swept = plain.clone().with_sweep(sweep::FraigParams::default());
        assert_eq!(swept.name(), "Ours + fraig");

        let out = swept.preprocess(&unsat_inst);
        let (res, _) = solve_cnf(&out.cnf, SolverConfig::default(), Budget::UNLIMITED);
        assert!(res.is_unsat(), "sweeping lost UNSAT");
        // Sweeping an equivalence miter should collapse most of the logic,
        // so the swept CNF must not be larger than the unswept one.
        let base = plain.preprocess(&unsat_inst);
        assert!(out.cnf.num_vars() <= base.cnf.num_vars());

        let sat_inst = sat_instance();
        let out = swept.preprocess(&sat_inst);
        let (res, _) = solve_cnf(&out.cnf, SolverConfig::default(), Budget::UNLIMITED);
        let model = res.model().expect("sweeping lost SAT").to_vec();
        let ins = out.decoder.decode_inputs(&model);
        assert_eq!(sat_inst.eval(&ins), vec![true], "swept model invalid");
    }

    #[test]
    fn labels() {
        assert_eq!(FrameworkPipeline::ours(RecipePolicy::None).name(), "Ours");
        assert_eq!(FrameworkPipeline::without_rl(0, 10).name(), "w/o RL");
        assert_eq!(
            FrameworkPipeline::conventional_mapper(RecipePolicy::None).name(),
            "C. Mapper"
        );
    }
}
