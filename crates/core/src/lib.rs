//! # `csat-preproc` — EDA-driven preprocessing for Circuit-SAT
//!
//! Reproduction of *"Logic Optimization Meets SAT: A Novel Framework for
//! Circuit-SAT Solving"* (DAC 2025): a preprocessing framework that turns
//! CSAT instances into solver-friendly CNF by combining RL-guided logic
//! synthesis with cost-customised LUT mapping (Algorithm 1).
//!
//! The crate exposes the three competing pipelines of the evaluation:
//!
//! * [`BaselinePipeline`] — direct Tseitin encoding,
//! * [`CompPipeline`] — the Eén–Mishchenko–Sörensson circuit-preprocessing
//!   baseline (size-oriented synthesis + area-cost LUT mapping),
//! * [`FrameworkPipeline`] — the paper's framework (*Ours*), generic over
//!   the recipe policy and mapping cost so the Fig. 5 ablation arms
//!   (*w/o RL*, *C. Mapper*) fall out of the same type,
//!
//! plus the campaign runner and report helpers in [`report`] used by the
//! `bench` crate to regenerate every table and figure.
//!
//! ```
//! use csat_preproc::{BaselinePipeline, Pipeline};
//! use sat::{solve_cnf, Budget, SolverConfig};
//!
//! let mut g = aig::Aig::new();
//! let a = g.add_pi();
//! let b = g.add_pi();
//! let x = g.xor(a, b);
//! g.add_po(x);
//!
//! let out = BaselinePipeline.preprocess(&g);
//! let (result, stats) = solve_cnf(&out.cnf, SolverConfig::kissat_like(), Budget::UNLIMITED);
//! assert!(result.is_sat());
//! println!("branchings: {}", stats.decisions);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline;
mod comp;
mod framework;
mod pipeline;
pub mod report;

pub use baseline::BaselinePipeline;
pub use comp::CompPipeline;
pub use framework::{FrameworkPipeline, MappingCost};
pub use pipeline::{Decoder, Pipeline, PreprocessResult};
