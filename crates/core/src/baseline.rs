//! The *Baseline* pipeline: direct Tseitin encoding (Sec. IV-B).

use crate::pipeline::{Decoder, Pipeline, PreprocessResult};
use aig::Aig;
use cnf::tseitin_sat_instance;
use std::time::Instant;

/// Conventional solving pipeline: "encoding the circuit-based instances
/// directly into CNFs".
#[derive(Clone, Copy, Debug, Default)]
pub struct BaselinePipeline;

impl Pipeline for BaselinePipeline {
    fn name(&self) -> String {
        "Baseline".to_string()
    }

    fn preprocess(&self, instance: &Aig) -> PreprocessResult {
        let t0 = Instant::now();
        let (cnf, map) = tseitin_sat_instance(instance);
        PreprocessResult {
            cnf,
            decoder: Decoder::Tseitin(map),
            preprocess_time: t0.elapsed(),
            recipe: String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::{solve_cnf, Budget, SolverConfig};

    #[test]
    fn baseline_solves_and_decodes() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.xor(a, b);
        g.add_po(x);
        let out = BaselinePipeline.preprocess(&g);
        let (res, _) = solve_cnf(&out.cnf, SolverConfig::default(), Budget::UNLIMITED);
        let model = res.model().expect("xor is satisfiable");
        let model: Vec<bool> = model.to_vec();
        let ins = out.decoder.decode_inputs(&model);
        assert_eq!(
            g.eval(&ins),
            vec![true],
            "decoded inputs must satisfy the PO"
        );
    }
}
