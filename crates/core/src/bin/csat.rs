//! `csat` — command-line front end for the preprocessing framework.
//!
//! Reads a combinational AIGER instance, preprocesses it with a selectable
//! pipeline, and either writes the resulting DIMACS CNF or solves it
//! directly.
//!
//! ```text
//! csat solve   <file.aag|file.aig> [--pipeline baseline|comp|ours] [--recipe "rs;rw"]
//!              [--solver kissat|cadical] [--conflicts N]
//! csat encode  <file.aag|file.aig> [--pipeline ...] [-o out.cnf]
//! csat stats   <file.aag|file.aig>
//! ```

use csat_preproc::{BaselinePipeline, CompPipeline, FrameworkPipeline, Pipeline};
use rl::RecipePolicy;
use sat::{solve_cnf, Budget, SolverConfig};
use std::io::BufReader;
use std::process::ExitCode;
use synth::Recipe;

const USAGE: &str = "usage: csat <solve|encode|stats> <instance.aag|instance.aig> [options]
  --pipeline baseline|comp|ours   (default ours)
  --recipe   \"rs;rw;b\"            synthesis recipe for 'ours' (default rs;rs;rw)
  --sweep                          add SAT sweeping (fraig) before mapping ('ours' only)
  --presolve                       run CNF presolve (BVE+subsumption) before solving
  --solver   kissat|cadical        (default kissat)
  --conflicts N                    conflict budget (default unlimited)
  -o FILE                          output path for 'encode'";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let cmd = args.first().ok_or("missing command")?;
    let path = args.get(1).ok_or("missing instance path")?;
    let instance = load(path)?;

    match cmd.as_str() {
        "stats" => {
            println!(
                "pis={} pos={} ands={} depth={}",
                instance.num_pis(),
                instance.num_pos(),
                instance.num_ands(),
                instance.depth()
            );
            Ok(ExitCode::SUCCESS)
        }
        "encode" => {
            let pipeline = make_pipeline(args)?;
            let pre = pipeline.preprocess(&instance);
            let text = cnf::dimacs::to_dimacs_string(&pre.cnf);
            match flag(args, "-o") {
                Some(out) => std::fs::write(&out, text).map_err(|e| e.to_string())?,
                None => print!("{text}"),
            }
            eprintln!(
                "c {} vars={} clauses={} preprocess={:?} recipe=[{}]",
                pipeline.name(),
                pre.cnf.num_vars(),
                pre.cnf.num_clauses(),
                pre.preprocess_time,
                pre.recipe
            );
            Ok(ExitCode::SUCCESS)
        }
        "solve" => {
            let pipeline = make_pipeline(args)?;
            let solver = match flag(args, "--solver").as_deref() {
                None | Some("kissat") => SolverConfig::kissat_like(),
                Some("cadical") => SolverConfig::cadical_like(),
                Some(other) => return Err(format!("unknown solver '{other}'")),
            };
            let budget = match flag(args, "--conflicts") {
                Some(n) => Budget::conflicts(n.parse().map_err(|_| "bad conflict budget")?),
                None => Budget::UNLIMITED,
            };
            let pre = pipeline.preprocess(&instance);
            let t0 = std::time::Instant::now();
            let (res, stats) = if args.iter().any(|a| a == "--presolve") {
                sat::presolve::solve_cnf_presolved(
                    &pre.cnf,
                    solver,
                    budget,
                    &sat::presolve::PresolveConfig::default(),
                )
            } else {
                solve_cnf(&pre.cnf, solver, budget)
            };
            let dt = t0.elapsed();
            eprintln!(
                "c {}: vars={} clauses={} decisions={} conflicts={} solve={dt:?}",
                pipeline.name(),
                pre.cnf.num_vars(),
                pre.cnf.num_clauses(),
                stats.decisions,
                stats.conflicts
            );
            match res {
                sat::SolveResult::Sat(model) => {
                    let ins = pre.decoder.decode_inputs(&model);
                    // SAT-competition-style output plus the PI witness.
                    println!("s SATISFIABLE");
                    let bits: Vec<String> = ins
                        .iter()
                        .map(|&b| if b { "1".into() } else { "0".to_string() })
                        .collect();
                    println!("v inputs {}", bits.join(""));
                    // Double-check the witness before reporting success.
                    if instance.eval(&ins).iter().any(|&o| o) {
                        Ok(ExitCode::from(10))
                    } else {
                        Err("internal error: model does not satisfy the instance".into())
                    }
                }
                sat::SolveResult::Unsat => {
                    println!("s UNSATISFIABLE");
                    Ok(ExitCode::from(20))
                }
                sat::SolveResult::Unknown => {
                    println!("s UNKNOWN");
                    Ok(ExitCode::SUCCESS)
                }
            }
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn load(path: &str) -> Result<aig::Aig, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut reader = BufReader::new(file);
    let result = if path.ends_with(".aag") {
        aig::aiger::read_aag(&mut reader)
    } else {
        aig::aiger::read_aig_binary(&mut reader)
    };
    result.map_err(|e| format!("cannot parse {path}: {e}"))
}

fn make_pipeline(args: &[String]) -> Result<Box<dyn Pipeline>, String> {
    match flag(args, "--pipeline").as_deref() {
        Some("baseline") => Ok(Box::new(BaselinePipeline)),
        Some("comp") => Ok(Box::new(CompPipeline::default())),
        None | Some("ours") => {
            let recipe: Recipe = flag(args, "--recipe")
                .unwrap_or_else(|| "rs;rs;rw".to_string())
                .parse()
                .map_err(|e| format!("{e}"))?;
            let mut pipeline = FrameworkPipeline::ours(RecipePolicy::Fixed(recipe));
            if args.iter().any(|a| a == "--sweep") {
                pipeline = pipeline.with_sweep(sweep::FraigParams::default());
            }
            Ok(Box::new(pipeline))
        }
        Some(other) => Err(format!("unknown pipeline '{other}'")),
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}
