//! `csat` — command-line front end for the preprocessing framework.
//!
//! Reads a combinational AIGER instance, preprocesses it with a selectable
//! pipeline, and either writes the resulting DIMACS CNF or solves it
//! directly.
//!
//! ```text
//! csat solve   <file.aag|file.aig|file.cnf> [--pipeline baseline|comp|ours] [--recipe "rs;rw"]
//!              [--solver kissat|cadical] [--conflicts N] [--timeout-ms N] [--proof out.drat]
//! csat encode  <file.aag|file.aig> [--pipeline ...] [-o out.cnf]
//! csat check   <file.cnf> <proof.drat>
//! csat stats   <file.aag|file.aig>
//! csat fraig   <file.aag|file.aig> [--timeout-ms N] [-o out.aag]
//! csat bmc     <file.aag> [--bound K] [--kind] [--preprocess none|synth|sweep|both]
//! csat gen     php <holes> [-o out.aag]
//! csat serve   [--workers N] [--queue N] [--timeout-ms N] [--shed]
//! csat batch   <queries.txt> [--workers N] [--timeout-ms N] [--batch-timeout-ms N]
//! ```
//!
//! `serve` and `batch` drive the `serve` crate's concurrent query engine:
//! `serve` reads query lines from stdin and streams result lines to stdout
//! until EOF; `batch` runs a query file to completion. Query lines are
//! `solve <f.aag|f.aig>`, `lec <a.aag> <b.aag>`, or `bmc <m.aag> <bound>`,
//! optionally ending in `timeout=MS`; `#`-lines are comments. Each query
//! yields exactly one `r id=.. kind=.. status=..` line; verdicts repeat
//! across structurally identical cones via the engine's verified proof
//! cache (`cache=hit`).
//!
//! `bmc` reads a *sequential* AIGER file (latches allowed, real POs are
//! the bad signals) and runs the incremental `mc` engines: bounded model
//! checking up to `--bound`, or k-induction with `--kind`.
//!
//! `solve` also accepts a DIMACS CNF directly (`.cnf`/`.dimacs`); with
//! `--proof FILE` the solver logs every derived clause and, on UNSAT,
//! writes a DRAT certificate that `csat check` (the independent backward
//! RUP checker — no solver code shared) verifies against the formula.
//!
//! ## Exit codes
//!
//! `10` satisfiable / counterexample, `20` unsatisfiable / proved, `0`
//! run completed without a verdict (e.g. BMC clean within its bound, or
//! `check` accepting a certificate), `1` certificate rejected,
//! `30` resources exhausted (conflict budget or `--timeout-ms` deadline),
//! `2` usage or input error. Every `solve`/`fraig`/`bmc` run emits one
//! machine-readable `c resource-report ...` line on stderr.

use csat_preproc::{BaselinePipeline, CompPipeline, FrameworkPipeline, Pipeline};
use rl::RecipePolicy;
use sat::{solve_cnf, Budget, SolverConfig};
use std::io::BufReader;
use std::process::ExitCode;
use std::time::{Duration, Instant};
use synth::Recipe;

const USAGE: &str =
    "usage: csat <solve|encode|check|stats|fraig|bmc|gen|serve|batch> <instance.aag|instance.aig> [options]
  --pipeline baseline|comp|ours   (default ours)
  --recipe   \"rs;rw;b\"            synthesis recipe for 'ours' (default rs;rs;rw)
  --sweep                          add SAT sweeping (fraig) before mapping ('ours' only)
  --presolve                       run CNF presolve (BVE+subsumption) before solving
  --solver   kissat|cadical        (default kissat)
  --conflicts N                    conflict budget (default unlimited)
  --timeout-ms N                   wall-clock deadline; exhaustion exits 30
  --proof FILE                     (solve) log DRAT; on UNSAT write the certificate
  --trace FILE                     write a span/metrics trace (JSONL; '.json' = Chrome trace_event)
  --metrics                        print a metrics summary table on stderr
  -o FILE                          output path for 'encode'/'fraig'/'gen'
solve also accepts a DIMACS formula directly (.cnf/.dimacs input)
check: csat check <formula.cnf> <proof.drat>   verify a DRAT certificate
bmc options (sequential .aag input, real POs = bad signals):
  --bound K                        frames to check / max induction strength (default 20)
  --kind                           prove by k-induction instead of plain BMC
  --preprocess none|synth|sweep|both  one-time transition-relation preprocessing
  --certify                        re-check every UNSAT verdict with the RUP checker
gen families:
  php <holes>                      pigeonhole circuit PHP(holes+1, holes), UNSAT
serve/batch (concurrent query engine; lines: solve F | lec A B | bmc M K [timeout=MS]):
  serve                            read query lines from stdin, stream results to stdout
  batch <queries.txt>              run a query file to completion
  --workers N                      worker threads (default: one per core)
  --queue N                        admission-queue capacity (default 64)
  --shed                           shed (answer unknown) instead of blocking when full
  --timeout-ms N                   default per-query deadline
  --batch-timeout-ms N             (batch) whole-batch deadline, min'd into each query
  --conflicts N                    first-attempt conflict budget (retries escalate x4)
  --retries N                      extra attempts for budget-exhausted queries (default 2)
  a 'stats' input line makes serve emit a Prometheus-text metrics snapshot
  on stdout, terminated by a '# EOF' line
  batch exit: 1 any failed, else 30 any unknown, else 10 all sat / 20 all unsat / 0 mixed
exit codes: 10 sat/cex, 20 unsat/proved, 0 inconclusive-but-complete,
            1 certificate rejected, 30 budget or deadline exhausted, 2 usage error";

/// Exit code for satisfiable instances / counterexamples found.
const EXIT_SAT: u8 = 10;
/// Exit code for unsatisfiable instances / proved properties.
const EXIT_UNSAT: u8 = 20;
/// Exit code when a conflict budget or wall-clock deadline ran out.
const EXIT_RESOURCE: u8 = 30;
/// Exit code when `csat check` rejects a certificate.
const EXIT_NOT_VERIFIED: u8 = 1;
/// Exit code for usage errors (bad flags, unreadable input, ...).
const EXIT_USAGE: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let cmd = args.first().ok_or("missing command")?;
    if cmd == "gen" {
        return run_gen(args);
    }
    if cmd == "serve" {
        check_flags(&args[1..], SERVE_VALUE_FLAGS, SERVE_BOOL_FLAGS)?;
        return run_serve(args);
    }
    let path = args.get(1).ok_or("missing instance path")?;
    if cmd == "batch" {
        let mut value_flags = SERVE_VALUE_FLAGS.to_vec();
        value_flags.push("--batch-timeout-ms");
        check_flags(&args[2..], &value_flags, SERVE_BOOL_FLAGS)?;
        return run_batch(path, args);
    }
    if cmd == "bmc" {
        check_flags(
            &args[2..],
            &[
                "--bound",
                "--conflicts",
                "--timeout-ms",
                "--preprocess",
                "--trace",
            ],
            &["--kind", "--certify", "--metrics"],
        )?;
        return run_bmc(path, args);
    }

    match cmd.as_str() {
        "stats" => {
            check_flags(&args[2..], &[], &[])?;
            let instance = load(path)?;
            println!(
                "pis={} pos={} ands={} depth={}",
                instance.num_pis(),
                instance.num_pos(),
                instance.num_ands(),
                instance.depth()
            );
            Ok(ExitCode::SUCCESS)
        }
        "encode" => {
            check_flags(&args[2..], &["--pipeline", "--recipe", "-o"], &["--sweep"])?;
            let instance = load(path)?;
            let pipeline = make_pipeline(args, None, &obs::Registry::disabled())?;
            let pre = pipeline.preprocess(&instance);
            let text = cnf::dimacs::to_dimacs_string(&pre.cnf);
            match value_of(args, "-o")? {
                Some(out) => std::fs::write(&out, text).map_err(|e| e.to_string())?,
                None => print!("{text}"),
            }
            eprintln!(
                "c {} vars={} clauses={} preprocess={:?} recipe=[{}]",
                pipeline.name(),
                pre.cnf.num_vars(),
                pre.cnf.num_clauses(),
                pre.preprocess_time,
                pre.recipe
            );
            Ok(ExitCode::SUCCESS)
        }
        "fraig" => {
            check_flags(
                &args[2..],
                &["--timeout-ms", "-o", "--trace"],
                &["--metrics"],
            )?;
            run_fraig(path, args)
        }
        "solve" => {
            check_flags(
                &args[2..],
                &[
                    "--pipeline",
                    "--recipe",
                    "--solver",
                    "--conflicts",
                    "--timeout-ms",
                    "--proof",
                    "--trace",
                ],
                &["--sweep", "--presolve", "--metrics"],
            )?;
            run_solve(path, args)
        }
        "check" => {
            let proof = args.get(2).ok_or("check: missing proof path")?;
            check_flags(&args[3..], &[], &[])?;
            run_check(path, proof)
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

/// CLI-side observability wiring shared by `solve`, `fraig`, `bmc`,
/// `serve`, and `batch`: `--trace FILE` turns span tracing on, `--metrics`
/// a summary table; either flag enables the registry, both share it.
struct ObsCli {
    reg: obs::Registry,
    trace_out: Option<String>,
    metrics: bool,
}

impl ObsCli {
    fn from_args(args: &[String]) -> Result<ObsCli, String> {
        let trace_out = value_of(args, "--trace")?;
        let metrics = args.iter().any(|a| a == "--metrics");
        let reg = if trace_out.is_some() {
            obs::Registry::tracing()
        } else if metrics {
            obs::Registry::metrics_only()
        } else {
            obs::Registry::disabled()
        };
        Ok(ObsCli {
            reg,
            trace_out,
            metrics,
        })
    }

    /// Drains the registry at end of run: writes the trace file (Chrome
    /// `trace_event` JSON for `.json` paths, JSONL otherwise) and prints
    /// the metrics table on stderr. A malformed span stream is reported
    /// but still written — the trace is the evidence needed to debug it.
    fn finish(&self) -> Result<(), String> {
        if !self.reg.is_enabled() {
            return Ok(());
        }
        let snap = self.reg.snapshot();
        if let Some(out) = &self.trace_out {
            let events = self.reg.drain_events();
            if let Err(e) = obs::check::validate(&events) {
                eprintln!("c trace: WARNING: span stream invalid: {e}");
            }
            let text = if out.ends_with(".json") {
                obs::export::to_chrome_trace(&events)
            } else {
                obs::export::to_jsonl(&events, &snap)
            };
            std::fs::write(out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
            let dropped = self.reg.dropped_events();
            if dropped > 0 {
                eprintln!(
                    "c trace: {} events -> {out} ({dropped} dropped)",
                    events.len()
                );
            } else {
                eprintln!("c trace: {} events -> {out}", events.len());
            }
        }
        if self.metrics {
            eprint!("{}", snap.to_table());
        }
        Ok(())
    }
}

/// Reads a DIMACS CNF file (the `.cnf`/`.dimacs` direct-solve path).
fn load_cnf(path: &str) -> Result<cnf::Cnf, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    cnf::dimacs::read_dimacs(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// True for inputs `csat solve` treats as a DIMACS formula rather than an
/// AIGER circuit.
fn is_dimacs_path(path: &str) -> bool {
    path.ends_with(".cnf") || path.ends_with(".dimacs")
}

/// Solves one CNF, optionally with DRAT proof logging (`--proof FILE`).
///
/// With logging on, presolve is automatically disabled — its derived and
/// eliminated clauses carry no proof steps, so a certificate produced
/// behind presolve would not refute the formula the user handed us. On
/// UNSAT the certificate is written to `proof_out`; SAT and Unknown
/// verdicts write nothing (a DRAT proof only ever certifies UNSAT).
fn solve_cnf_cli(
    f: &cnf::Cnf,
    mut config: SolverConfig,
    budget: Budget,
    presolve: bool,
    proof_out: Option<&str>,
    reg: &obs::Registry,
) -> Result<(sat::SolveResult, sat::Stats), String> {
    if proof_out.is_none() {
        if presolve {
            // The presolver owns its inner solver, so per-solve spans are
            // unavailable on this path; gauges still publish below.
            let (res, stats) = sat::presolve::solve_cnf_presolved(
                f,
                config,
                budget,
                &sat::presolve::PresolveConfig::default(),
            );
            stats.publish(reg);
            return Ok((res, stats));
        }
        if !reg.is_enabled() {
            return Ok(solve_cnf(f, config, budget));
        }
    } else if presolve {
        eprintln!("c presolve disabled: it does not emit proof steps (--proof is on)");
    }
    config.proof = proof_out.is_some();
    let mut solver = sat::Solver::from_cnf(f, config);
    solver.set_observer(reg.root());
    solver.set_budget(budget);
    let res = solver.solve();
    let stats = *solver.stats();
    stats.publish(reg);
    if let Some(out) = proof_out {
        if res.is_unsat() {
            let log = solver.proof().expect("proof logging was enabled");
            std::fs::write(out, log.to_drat_string())
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            eprintln!(
                "c proof: {} additions, {} deletions -> {out}",
                log.additions(),
                log.deletions()
            );
        } else {
            eprintln!("c proof: verdict is not UNSAT, no certificate written to {out}");
        }
    }
    Ok((res, stats))
}

/// `csat solve`: preprocess and solve one combinational instance, or
/// solve a DIMACS formula directly (`.cnf`/`.dimacs` input).
fn run_solve(path: &str, args: &[String]) -> Result<ExitCode, String> {
    let obs_cli = ObsCli::from_args(args)?;
    let timeout_ms: Option<u64> = parsed(args, "--timeout-ms")?;
    let deadline = timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let solver = match value_of(args, "--solver")?.as_deref() {
        None | Some("kissat") => SolverConfig::kissat_like(),
        Some("cadical") => SolverConfig::cadical_like(),
        Some(other) => return Err(format!("unknown solver '{other}'")),
    };
    let budget = Budget {
        conflicts: parsed(args, "--conflicts")?,
        ..Budget::UNLIMITED
    }
    .with_deadline(deadline);
    let proof_out = value_of(args, "--proof")?;
    let presolve = args.iter().any(|a| a == "--presolve");

    if is_dimacs_path(path) {
        for flag in ["--pipeline", "--recipe", "--sweep"] {
            if args.iter().any(|a| a == flag) {
                return Err(format!(
                    "{flag} applies to AIGER inputs, not a DIMACS formula"
                ));
            }
        }
        return run_solve_dimacs(
            path,
            budget,
            solver,
            presolve,
            proof_out.as_deref(),
            timeout_ms,
            &obs_cli,
        );
    }

    let instance = load(path)?;
    let pipeline = make_pipeline(args, deadline, &obs_cli.reg)?;
    let t0 = Instant::now();
    let pre = pipeline.preprocess(&instance);
    if proof_out.is_some() {
        eprintln!(
            "c proof: certificate refers to the encoded CNF \
             (reproduce it with 'csat encode' and identical pipeline flags)"
        );
    }
    let (res, stats) = solve_cnf_cli(
        &pre.cnf,
        solver,
        budget,
        presolve,
        proof_out.as_deref(),
        &obs_cli.reg,
    )?;
    let dt = t0.elapsed();
    eprintln!(
        "c {}: vars={} clauses={} decisions={} conflicts={} solve={dt:?}",
        pipeline.name(),
        pre.cnf.num_vars(),
        pre.cnf.num_clauses(),
        stats.decisions,
        stats.conflicts
    );
    let status = match res {
        sat::SolveResult::Sat(_) => "sat",
        sat::SolveResult::Unsat => "unsat",
        sat::SolveResult::Unknown => "unknown",
    };
    resource_report(
        "solve",
        status,
        dt,
        timeout_ms,
        &[
            ("conflicts", stats.conflicts),
            ("deadline_interrupts", stats.deadline_interrupts),
            ("cancellations", stats.cancellations),
        ],
    );
    obs_cli.finish()?;
    match res {
        sat::SolveResult::Sat(model) => {
            let ins = pre.decoder.decode_inputs(&model);
            // SAT-competition-style output plus the PI witness.
            println!("s SATISFIABLE");
            let bits: Vec<String> = ins
                .iter()
                .map(|&b| if b { "1".into() } else { "0".to_string() })
                .collect();
            println!("v inputs {}", bits.join(""));
            // Double-check the witness before reporting success.
            if instance.eval(&ins).iter().any(|&o| o) {
                Ok(ExitCode::from(EXIT_SAT))
            } else {
                Err("internal error: model does not satisfy the instance".into())
            }
        }
        sat::SolveResult::Unsat => {
            println!("s UNSATISFIABLE");
            Ok(ExitCode::from(EXIT_UNSAT))
        }
        sat::SolveResult::Unknown => {
            // CDCL is complete: Unknown only ever means a budget or
            // deadline fired, so it gets the resource exit code.
            println!("s UNKNOWN");
            Ok(ExitCode::from(EXIT_RESOURCE))
        }
    }
}

/// `csat solve` on a DIMACS formula: no pipeline, no AIG witness — the
/// model is checked against the formula itself, and UNSAT verdicts can be
/// certified with `--proof`.
fn run_solve_dimacs(
    path: &str,
    budget: Budget,
    config: SolverConfig,
    presolve: bool,
    proof_out: Option<&str>,
    timeout_ms: Option<u64>,
    obs_cli: &ObsCli,
) -> Result<ExitCode, String> {
    let f = load_cnf(path)?;
    let t0 = Instant::now();
    let (res, stats) = solve_cnf_cli(&f, config, budget, presolve, proof_out, &obs_cli.reg)?;
    let dt = t0.elapsed();
    eprintln!(
        "c dimacs: vars={} clauses={} decisions={} conflicts={} solve={dt:?}",
        f.num_vars(),
        f.num_clauses(),
        stats.decisions,
        stats.conflicts
    );
    let status = match res {
        sat::SolveResult::Sat(_) => "sat",
        sat::SolveResult::Unsat => "unsat",
        sat::SolveResult::Unknown => "unknown",
    };
    resource_report(
        "solve",
        status,
        dt,
        timeout_ms,
        &[
            ("conflicts", stats.conflicts),
            ("deadline_interrupts", stats.deadline_interrupts),
            ("cancellations", stats.cancellations),
        ],
    );
    obs_cli.finish()?;
    match res {
        sat::SolveResult::Sat(model) => {
            if !f.eval(&model) {
                return Err("internal error: model does not satisfy the formula".into());
            }
            println!("s SATISFIABLE");
            let lits: Vec<String> = (1..=f.num_vars())
                .map(|v| {
                    let val = model[(v - 1) as usize];
                    if val {
                        v.to_string()
                    } else {
                        format!("-{v}")
                    }
                })
                .collect();
            println!("v {} 0", lits.join(" "));
            Ok(ExitCode::from(EXIT_SAT))
        }
        sat::SolveResult::Unsat => {
            println!("s UNSATISFIABLE");
            Ok(ExitCode::from(EXIT_UNSAT))
        }
        sat::SolveResult::Unknown => {
            println!("s UNKNOWN");
            Ok(ExitCode::from(EXIT_RESOURCE))
        }
    }
}

/// `csat check`: verify a DRAT certificate against a DIMACS formula with
/// the independent backward RUP checker. Exit 0 = verified, 1 = rejected,
/// 2 = unreadable/malformed inputs.
fn run_check(path: &str, proof_path: &str) -> Result<ExitCode, String> {
    let f = load_cnf(path)?;
    let text = std::fs::read_to_string(proof_path)
        .map_err(|e| format!("cannot open {proof_path}: {e}"))?;
    let proof =
        checker::Proof::parse_drat(&text).map_err(|e| format!("cannot parse {proof_path}: {e}"))?;
    let clauses: Vec<Vec<i32>> = f
        .clauses()
        .iter()
        .map(|c| c.iter().map(|l| l.to_dimacs()).collect())
        .collect();
    let t0 = Instant::now();
    match checker::check(&clauses, &proof) {
        Ok(outcome) => {
            eprintln!(
                "c check: verified_adds={} skipped_adds={} core_formula={}/{} in {:?}",
                outcome.verified_adds,
                outcome.skipped_adds,
                outcome.core_formula.len(),
                f.num_clauses(),
                t0.elapsed()
            );
            println!("s VERIFIED");
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("c check: rejected after {:?}", t0.elapsed());
            println!("s NOT VERIFIED ({e})");
            Ok(ExitCode::from(EXIT_NOT_VERIFIED))
        }
    }
}

/// `csat fraig`: SAT-sweep one combinational instance.
fn run_fraig(path: &str, args: &[String]) -> Result<ExitCode, String> {
    let obs_cli = ObsCli::from_args(args)?;
    let instance = load(path)?;
    let timeout_ms: Option<u64> = parsed(args, "--timeout-ms")?;
    let params = sweep::FraigParams {
        deadline: timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
        obs: obs_cli.reg.clone(),
        ..sweep::FraigParams::default()
    };
    let t0 = Instant::now();
    let outcome = sweep::fraig(&instance, &params);
    let dt = t0.elapsed();
    let s = &outcome.stats;
    eprintln!(
        "c fraig: ands {} -> {} rounds={} proved={} disproved={} unknown={}",
        instance.num_ands(),
        outcome.aig.num_ands(),
        s.rounds,
        s.proved,
        s.disproved,
        s.unknown
    );
    let timed_out = s.deadline_interrupts > 0;
    resource_report(
        "fraig",
        if timed_out { "timeout" } else { "done" },
        dt,
        timeout_ms,
        &[
            ("sat_calls", s.sat_calls),
            ("deadline_interrupts", s.deadline_interrupts),
            ("shard_failures", s.shard_failures),
        ],
    );
    obs_cli.finish()?;
    if let Some(out) = value_of(args, "-o")? {
        let file = std::fs::File::create(&out).map_err(|e| format!("cannot write {out}: {e}"))?;
        aig::aiger::write_aag(&outcome.aig, file).map_err(|e| e.to_string())?;
    }
    Ok(if timed_out {
        ExitCode::from(EXIT_RESOURCE)
    } else {
        ExitCode::SUCCESS
    })
}

/// `csat gen`: write a generated workload as ASCII AIGER.
fn run_gen(args: &[String]) -> Result<ExitCode, String> {
    let family = args.get(1).ok_or("gen: missing family (try 'php')")?;
    let aig = match family.as_str() {
        "php" => {
            let holes: u32 = args
                .get(2)
                .ok_or("gen php: missing hole count")?
                .parse()
                .map_err(|_| "gen php: bad hole count")?;
            if !(1..=64).contains(&holes) {
                return Err("gen php: hole count must be in 1..=64".into());
            }
            check_flags(&args[3..], &["-o"], &[])?;
            workloads::cnf_gen::pigeonhole_aig(holes)
        }
        other => return Err(format!("unknown gen family '{other}'")),
    };
    match value_of(args, "-o")? {
        Some(out) => {
            let file =
                std::fs::File::create(&out).map_err(|e| format!("cannot write {out}: {e}"))?;
            aig::aiger::write_aag(&aig, file).map_err(|e| e.to_string())?;
        }
        None => {
            print!("{}", aig::aiger::to_aag_string(&aig));
        }
    }
    eprintln!(
        "c gen {}: pis={} ands={}",
        family,
        aig.num_pis(),
        aig.num_ands()
    );
    Ok(ExitCode::SUCCESS)
}

/// `csat bmc`: incremental bounded model checking / k-induction.
fn run_bmc(path: &str, args: &[String]) -> Result<ExitCode, String> {
    // The inner runner has several verdict-specific early returns; the
    // wrapper guarantees the trace/metrics drain happens on all of them.
    let obs_cli = ObsCli::from_args(args)?;
    let code = run_bmc_inner(path, args, &obs_cli.reg)?;
    obs_cli.finish()?;
    Ok(code)
}

fn run_bmc_inner(path: &str, args: &[String], reg: &obs::Registry) -> Result<ExitCode, String> {
    if !path.ends_with(".aag") {
        return Err("bmc needs an ASCII sequential AIGER (.aag) file".into());
    }
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let machine = aig::aiger::read_seq_aag(BufReader::new(file))
        .map_err(|e| format!("cannot parse {path}: {e}"))?;
    if machine.num_pos() == 0 {
        return Err("machine has no real PO to use as a bad signal".into());
    }
    let bound: usize = parsed(args, "--bound")?.unwrap_or(20);
    let query_budget: Option<u64> = parsed(args, "--conflicts")?;
    let timeout_ms: Option<u64> = parsed(args, "--timeout-ms")?;
    let deadline = timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let sweep_params = || sweep::FraigParams {
        obs: reg.clone(),
        ..sweep::FraigParams::default()
    };
    let preprocess = match value_of(args, "--preprocess")?.as_deref() {
        None | Some("none") => mc::Preprocess::None,
        Some("synth") => mc::Preprocess::Synth(synth::Recipe::size_script()),
        Some("sweep") => mc::Preprocess::Sweep(sweep_params()),
        Some("both") => mc::Preprocess::Both(synth::Recipe::size_script(), sweep_params()),
        Some(other) => return Err(format!("unknown preprocess mode '{other}'")),
    };
    eprintln!(
        "c machine: pis={} latches={} pos={} ands={}",
        machine.num_pis(),
        machine.num_latches(),
        machine.num_pos(),
        machine.comb().num_ands()
    );
    let certify = args.iter().any(|a| a == "--certify");
    let t0 = Instant::now();
    let (cex, proved, frames) = if args.iter().any(|a| a == "--kind") {
        let opts = mc::KindOptions {
            solver: SolverConfig::default(),
            query_budget,
            deadline,
            preprocess,
            certify,
            obs: reg.clone(),
        };
        match mc::prove(&machine, bound, &opts) {
            mc::KindResult::Proved { k } => {
                eprintln!("c proved invariant by {k}-induction in {:?}", t0.elapsed());
                resource_report("kind", "proved", t0.elapsed(), timeout_ms, &[]);
                (None, true, k)
            }
            mc::KindResult::Cex { depth, trace } => (Some((depth, trace)), false, depth + 1),
            mc::KindResult::Unknown { k } => {
                eprintln!("c inconclusive at strength {k} after {:?}", t0.elapsed());
                resource_report("kind", "unknown", t0.elapsed(), timeout_ms, &[]);
                println!("s UNKNOWN");
                return Ok(ExitCode::from(EXIT_RESOURCE));
            }
        }
    } else {
        let opts = mc::BmcOptions {
            solver: SolverConfig::default(),
            query_budget,
            deadline,
            preprocess,
            certify,
            obs: reg.clone(),
        };
        let mut engine = mc::BmcEngine::new(&machine, opts);
        let result = engine.check_frames(bound);
        let stats = *engine.stats();
        let counters = [
            ("conflicts", stats.conflicts),
            ("deadline_interrupts", stats.deadline_interrupts),
            ("cancellations", stats.cancellations),
        ];
        match result {
            mc::BmcResult::Cex { depth, trace } => {
                resource_report("bmc", "cex", t0.elapsed(), timeout_ms, &counters);
                (Some((depth, trace)), false, depth + 1)
            }
            mc::BmcResult::Clean { frames } => {
                eprintln!(
                    "c no counterexample in {frames} frames ({} conflicts, {:?})",
                    stats.conflicts,
                    t0.elapsed()
                );
                resource_report("bmc", "clean", t0.elapsed(), timeout_ms, &counters);
                println!("s UNKNOWN");
                // The run *completed* — every requested frame was checked
                // — so this is the inconclusive-but-done exit, not the
                // resource one.
                return Ok(ExitCode::SUCCESS);
            }
            mc::BmcResult::Unknown { frame } => {
                eprintln!(
                    "c budget exhausted at frame {frame} after {:?}",
                    t0.elapsed()
                );
                resource_report("bmc", "unknown", t0.elapsed(), timeout_ms, &counters);
                println!("s UNKNOWN");
                return Ok(ExitCode::from(EXIT_RESOURCE));
            }
        }
    };
    if proved {
        println!("s UNSATISFIABLE");
        eprintln!("c property is invariant (k = {frames})");
        return Ok(ExitCode::from(EXIT_UNSAT));
    }
    let (depth, trace) = match cex {
        Some(pair) => pair,
        None => return Err("internal error: non-proved path lost its counterexample".into()),
    };
    // Replay the trace word-level (compiled stepper, trace in bit 0)
    // before reporting it.
    let mut stepper = machine.stepper();
    let mut fired = false;
    for frame in &trace {
        let pis: Vec<u64> = frame.iter().map(|&b| u64::from(b)).collect();
        fired = stepper.step_words(&pis).iter().any(|&w| w & 1 != 0);
    }
    if !fired {
        return Err("internal error: trace does not reach a violation".into());
    }
    eprintln!("c counterexample at depth {depth} in {:?}", t0.elapsed());
    println!("s SATISFIABLE");
    for (t, frame) in trace.iter().enumerate() {
        let bits: Vec<String> = frame
            .iter()
            .map(|&b| if b { "1".into() } else { "0".to_string() })
            .collect();
        println!("v frame {t} inputs {}", bits.join(""));
    }
    Ok(ExitCode::from(EXIT_SAT))
}

/// Flags shared by `csat serve` and `csat batch` that take a value.
const SERVE_VALUE_FLAGS: &[&str] = &[
    "--workers",
    "--queue",
    "--timeout-ms",
    "--conflicts",
    "--retries",
    "--trace",
];
/// Boolean flags shared by `csat serve` and `csat batch`.
const SERVE_BOOL_FLAGS: &[&str] = &["--shed", "--metrics"];

/// Builds the query engine from the shared serve/batch flags.
fn engine_from_args(args: &[String], reg: &obs::Registry) -> Result<serve::Engine, String> {
    let defaults = serve::EngineConfig::default();
    let cfg = serve::EngineConfig {
        workers: parsed(args, "--workers")?.unwrap_or(0),
        obs: reg.clone(),
        queue_capacity: parsed(args, "--queue")?.unwrap_or(defaults.queue_capacity),
        admission: if args.iter().any(|a| a == "--shed") {
            serve::Admission::Shed
        } else {
            serve::Admission::Block
        },
        // Like `csat solve`, the default is an unlimited conflict budget —
        // budget-escalating retries only engage once --conflicts bounds it.
        base_conflicts: parsed(args, "--conflicts")?.unwrap_or(u64::MAX),
        max_attempts: parsed::<u32>(args, "--retries")?
            .unwrap_or(defaults.max_attempts - 1)
            .saturating_add(1),
        ..defaults
    };
    Ok(serve::Engine::new(cfg))
}

/// One parsed query line: the query plus its per-line `timeout=MS`.
struct QueryLine {
    query: serve::Query,
    timeout_ms: Option<u64>,
}

/// Parses one `solve F | lec A B | bmc M K [timeout=MS]` line; `None` for
/// blanks and `#` comments.
fn parse_query_line(line: &str) -> Result<Option<QueryLine>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut tokens: Vec<&str> = trimmed.split_whitespace().collect();
    let mut timeout_ms = None;
    if let Some(v) = tokens.last().and_then(|t| t.strip_prefix("timeout=")) {
        timeout_ms = Some(
            v.parse()
                .map_err(|_| format!("bad timeout in query line '{trimmed}'"))?,
        );
        tokens.pop();
    }
    let query = match tokens.as_slice() {
        ["solve", f] => serve::Query::Solve(load(f)?),
        ["lec", a, b] => serve::Query::Lec(load(a)?, load(b)?),
        ["bmc", m, k] => {
            if !m.ends_with(".aag") {
                return Err("bmc queries need an ASCII sequential AIGER (.aag) file".into());
            }
            let file = std::fs::File::open(m).map_err(|e| format!("cannot open {m}: {e}"))?;
            let machine = aig::aiger::read_seq_aag(BufReader::new(file))
                .map_err(|e| format!("cannot parse {m}: {e}"))?;
            let bound: usize = k
                .parse()
                .map_err(|_| format!("bad bmc bound in query line '{trimmed}'"))?;
            serve::Query::Bmc(machine, bound)
        }
        _ => return Err(format!("bad query line '{trimmed}'")),
    };
    Ok(Some(QueryLine { query, timeout_ms }))
}

/// Prints the one structured result line a query's response maps to.
fn print_response(r: &serve::Response) {
    let reason = match &r.verdict {
        serve::Verdict::Unknown(u) => format!(" reason={}", u.name()),
        _ => String::new(),
    };
    let witness = match &r.verdict {
        serve::Verdict::Sat(w) if w.len() <= 256 => {
            let bits: String = w.iter().map(|&b| if b { '1' } else { '0' }).collect();
            format!(" witness={bits}")
        }
        _ => String::new(),
    };
    println!(
        "r id={} kind={} status={}{reason}{witness} elapsed_ms={} attempts={} cache={}",
        r.id,
        r.kind.name(),
        r.verdict.status(),
        r.wall.as_millis(),
        r.attempts,
        if r.cache_hit { "hit" } else { "miss" }
    );
}

/// Folds per-query verdicts into the PR 7 exit-code convention: any
/// `Failed` beats any `Unknown` (30), else all-SAT is 10, all-UNSAT 20,
/// and a mixed (or empty) but complete run is 0.
fn exit_for_responses<'a>(verdicts: impl Iterator<Item = &'a serve::Verdict>) -> ExitCode {
    let (mut sat, mut unsat, mut unknown, mut failed) = (0u64, 0u64, 0u64, 0u64);
    for v in verdicts {
        match v {
            serve::Verdict::Sat(_) => sat += 1,
            serve::Verdict::Unsat => unsat += 1,
            serve::Verdict::Unknown(_) => unknown += 1,
            serve::Verdict::Failed => failed += 1,
        }
    }
    if failed > 0 {
        ExitCode::from(EXIT_NOT_VERIFIED)
    } else if unknown > 0 {
        ExitCode::from(EXIT_RESOURCE)
    } else if sat > 0 && unsat == 0 {
        ExitCode::from(EXIT_SAT)
    } else if unsat > 0 && sat == 0 {
        ExitCode::from(EXIT_UNSAT)
    } else {
        ExitCode::SUCCESS
    }
}

/// Engine telemetry rendered for the `resource-report` line.
fn serve_counters(s: &serve::EngineStats) -> Vec<(&'static str, u64)> {
    vec![
        ("submitted", s.submitted),
        ("responded", s.responded),
        ("cache_hits", s.cache.hits),
        ("certs_verified", s.cache.certs_verified),
        ("certs_rejected", s.cache.certs_rejected),
        ("retries", s.retries),
        ("sheds", s.sheds),
        ("panics", s.panics_contained),
        ("failures", s.failures),
    ]
}

/// `csat serve`: line-oriented service on stdin/stdout. Queries stream in,
/// result lines stream out as verdicts land (a printer thread owns stdout,
/// so a slow query never blocks earlier results); EOF drains outstanding
/// queries, shuts the engine down, and exits by the batch convention.
fn run_serve(args: &[String]) -> Result<ExitCode, String> {
    use std::io::BufRead;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    let obs_cli = ObsCli::from_args(args)?;
    let engine = Arc::new(engine_from_args(args, &obs_cli.reg)?);
    let default_timeout: Option<u64> = parsed(args, "--timeout-ms")?;
    let submitted = Arc::new(AtomicU64::new(0));
    let eof = Arc::new(AtomicBool::new(false));
    let printer = {
        let engine = Arc::clone(&engine);
        let submitted = Arc::clone(&submitted);
        let eof = Arc::clone(&eof);
        std::thread::spawn(move || {
            let mut verdicts = Vec::new();
            loop {
                match engine.recv_timeout(Duration::from_millis(50)) {
                    Some(r) => {
                        print_response(&r);
                        verdicts.push(r.verdict);
                    }
                    None => {
                        if eof.load(Ordering::Acquire)
                            && verdicts.len() as u64 >= submitted.load(Ordering::Acquire)
                        {
                            return verdicts;
                        }
                    }
                }
            }
        })
    };
    let t0 = Instant::now();
    let mut parse_errors = 0u64;
    for line in std::io::stdin().lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if line.trim() == "stats" {
            // Live introspection: a Prometheus-text snapshot of the
            // session registry (or a throwaway one when tracing is off),
            // written atomically w.r.t. result lines — holding the stdout
            // lock parks the printer thread between its own lines.
            let reg = if obs_cli.reg.is_enabled() {
                obs_cli.reg.clone()
            } else {
                obs::Registry::metrics_only()
            };
            engine.stats().publish(&reg);
            let prom = reg.snapshot().to_prometheus();
            use std::io::Write;
            let mut out = std::io::stdout().lock();
            out.write_all(prom.as_bytes())
                .and_then(|()| out.write_all(b"# EOF\n"))
                .and_then(|()| out.flush())
                .map_err(|e| format!("stdout: {e}"))?;
            continue;
        }
        let parsed_line = match parse_query_line(&line) {
            Ok(Some(q)) => q,
            Ok(None) => continue,
            Err(e) => {
                // A malformed line must not kill the service; report it and
                // fold it into the exit code like a failed query.
                eprintln!("c error: {e}");
                parse_errors += 1;
                continue;
            }
        };
        let deadline = parsed_line
            .timeout_ms
            .or(default_timeout)
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        match engine.submit(
            &parsed_line.query,
            serve::QueryOpts {
                deadline,
                conflicts: None,
            },
        ) {
            Ok(_) => {
                submitted.fetch_add(1, Ordering::Release);
            }
            Err(e) => {
                eprintln!("c error: {e}");
                parse_errors += 1;
            }
        }
    }
    eof.store(true, Ordering::Release);
    let verdicts = printer.join().expect("printer thread panicked");
    engine.shutdown();
    let stats = engine.stats();
    // The final accounting used to vanish at stdin EOF; surface it.
    eprintln!("c engine-stats {stats}");
    stats.publish(&obs_cli.reg);
    let status = if parse_errors > 0 || stats.failures > 0 {
        "failed"
    } else if verdicts
        .iter()
        .any(|v| matches!(v, serve::Verdict::Unknown(_)))
    {
        "unknown"
    } else {
        "done"
    };
    resource_report(
        "serve",
        status,
        t0.elapsed(),
        default_timeout,
        &serve_counters(&stats),
    );
    obs_cli.finish()?;
    if parse_errors > 0 {
        return Ok(ExitCode::from(EXIT_NOT_VERIFIED));
    }
    Ok(exit_for_responses(verdicts.iter()))
}

/// `csat batch`: run a query file to completion through the engine.
fn run_batch(path: &str, args: &[String]) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut queries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if let Some(q) =
            parse_query_line(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?
        {
            // Normalize up front so shape defects are a usage error (exit
            // 2) before anything is admitted, keeping one-response-each
            // for everything that does get submitted.
            let norm = q
                .query
                .normalize()
                .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
            queries.push((norm, q.timeout_ms));
        }
    }
    let default_timeout: Option<u64> = parsed(args, "--timeout-ms")?;
    let batch_timeout: Option<u64> = parsed(args, "--batch-timeout-ms")?;
    let obs_cli = ObsCli::from_args(args)?;
    let engine = engine_from_args(args, &obs_cli.reg)?;
    let t0 = Instant::now();
    let batch_deadline = batch_timeout.map(|ms| t0 + Duration::from_millis(ms));
    let total = queries.len();
    for (norm, timeout_ms) in queries {
        let per_query = timeout_ms
            .or(default_timeout)
            .map(|ms| t0 + Duration::from_millis(ms));
        let deadline = match (per_query, batch_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        engine
            .submit_normalized(
                norm,
                serve::QueryOpts {
                    deadline,
                    conflicts: None,
                },
            )
            .map_err(|e| format!("{e}"))?;
    }
    let mut responses = Vec::with_capacity(total);
    while responses.len() < total {
        let r = engine
            .recv_timeout(Duration::from_secs(600))
            .ok_or("engine lost a response (bug)")?;
        responses.push(r);
    }
    responses.sort_by_key(|r| r.id);
    for r in &responses {
        print_response(r);
    }
    engine.shutdown();
    let stats = engine.stats();
    stats.publish(&obs_cli.reg);
    let status = if stats.failures > 0 {
        "failed"
    } else if responses
        .iter()
        .any(|r| matches!(r.verdict, serve::Verdict::Unknown(_)))
    {
        "unknown"
    } else {
        "done"
    };
    resource_report(
        "batch",
        status,
        t0.elapsed(),
        batch_timeout.or(default_timeout),
        &serve_counters(&stats),
    );
    obs_cli.finish()?;
    Ok(exit_for_responses(responses.iter().map(|r| &r.verdict)))
}

/// Emits the machine-readable telemetry line every resource-governed mode
/// prints exactly once, whatever the outcome:
/// `c resource-report mode=.. status=.. elapsed_ms=.. timeout_ms=.. k=v ...`
fn resource_report(
    mode: &str,
    status: &str,
    elapsed: Duration,
    timeout_ms: Option<u64>,
    counters: &[(&str, u64)],
) {
    let timeout = timeout_ms.map_or("none".to_string(), |ms| ms.to_string());
    let extras: String = counters
        .iter()
        .map(|(k, v)| format!(" {k}={v}"))
        .collect::<Vec<_>>()
        .join("");
    eprintln!(
        "c resource-report mode={mode} status={status} elapsed_ms={} timeout_ms={timeout}{extras}",
        elapsed.as_millis()
    );
}

fn load(path: &str) -> Result<aig::Aig, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut reader = BufReader::new(file);
    let result = if path.ends_with(".aag") {
        aig::aiger::read_aag(&mut reader)
    } else {
        aig::aiger::read_aig_binary(&mut reader)
    };
    result.map_err(|e| format!("cannot parse {path}: {e}"))
}

fn make_pipeline(
    args: &[String],
    deadline: Option<Instant>,
    reg: &obs::Registry,
) -> Result<Box<dyn Pipeline>, String> {
    match value_of(args, "--pipeline")?.as_deref() {
        Some("baseline") => Ok(Box::new(BaselinePipeline)),
        Some("comp") => Ok(Box::new(CompPipeline::default())),
        None | Some("ours") => {
            let recipe: Recipe = value_of(args, "--recipe")?
                .unwrap_or_else(|| "rs;rs;rw".to_string())
                .parse()
                .map_err(|e| format!("{e}"))?;
            let mut pipeline = FrameworkPipeline::ours(RecipePolicy::Fixed(recipe));
            if args.iter().any(|a| a == "--sweep") {
                // The solve deadline governs the sweep stage too: a
                // timed-out preprocess degrades to fewer merges, never to
                // a stuck run.
                pipeline = pipeline.with_sweep(sweep::FraigParams {
                    deadline,
                    obs: reg.clone(),
                    ..sweep::FraigParams::default()
                });
            }
            Ok(Box::new(pipeline))
        }
        Some(other) => Err(format!("unknown pipeline '{other}'")),
    }
}

/// Rejects any argument that is not a recognised flag of the current
/// command (catching typos that would otherwise be silently ignored).
/// `value_flags` consume the following token as their value.
fn check_flags(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if value_flags.contains(&a) {
            if i + 1 >= args.len() {
                return Err(format!("flag {a} needs a value"));
            }
            i += 2;
        } else if bool_flags.contains(&a) {
            i += 1;
        } else {
            return Err(format!("unexpected argument '{a}'"));
        }
    }
    Ok(())
}

/// The value following `name`, or `Err` if the flag is present but the
/// value is missing — a dangling flag must never silently fall back to a
/// default.
fn value_of(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(format!("flag {name} needs a value")),
        },
    }
}

/// Parses the value of `name`, with the offending text in the error.
fn parsed<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match value_of(args, name)? {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("bad value '{v}' for {name}")),
    }
}
