//! `csat` — command-line front end for the preprocessing framework.
//!
//! Reads a combinational AIGER instance, preprocesses it with a selectable
//! pipeline, and either writes the resulting DIMACS CNF or solves it
//! directly.
//!
//! ```text
//! csat solve   <file.aag|file.aig> [--pipeline baseline|comp|ours] [--recipe "rs;rw"]
//!              [--solver kissat|cadical] [--conflicts N]
//! csat encode  <file.aag|file.aig> [--pipeline ...] [-o out.cnf]
//! csat stats   <file.aag|file.aig>
//! csat bmc     <file.aag> [--bound K] [--kind] [--preprocess none|synth|sweep|both]
//! ```
//!
//! `bmc` reads a *sequential* AIGER file (latches allowed, real POs are
//! the bad signals) and runs the incremental `mc` engines: bounded model
//! checking up to `--bound`, or k-induction with `--kind`.

use csat_preproc::{BaselinePipeline, CompPipeline, FrameworkPipeline, Pipeline};
use rl::RecipePolicy;
use sat::{solve_cnf, Budget, SolverConfig};
use std::io::BufReader;
use std::process::ExitCode;
use synth::Recipe;

const USAGE: &str = "usage: csat <solve|encode|stats|bmc> <instance.aag|instance.aig> [options]
  --pipeline baseline|comp|ours   (default ours)
  --recipe   \"rs;rw;b\"            synthesis recipe for 'ours' (default rs;rs;rw)
  --sweep                          add SAT sweeping (fraig) before mapping ('ours' only)
  --presolve                       run CNF presolve (BVE+subsumption) before solving
  --solver   kissat|cadical        (default kissat)
  --conflicts N                    conflict budget (default unlimited)
  -o FILE                          output path for 'encode'
bmc options (sequential .aag input, real POs = bad signals):
  --bound K                        frames to check / max induction strength (default 20)
  --kind                           prove by k-induction instead of plain BMC
  --preprocess none|synth|sweep|both  one-time transition-relation preprocessing";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let cmd = args.first().ok_or("missing command")?;
    let path = args.get(1).ok_or("missing instance path")?;
    if cmd == "bmc" {
        return run_bmc(path, args);
    }
    let instance = load(path)?;

    match cmd.as_str() {
        "stats" => {
            println!(
                "pis={} pos={} ands={} depth={}",
                instance.num_pis(),
                instance.num_pos(),
                instance.num_ands(),
                instance.depth()
            );
            Ok(ExitCode::SUCCESS)
        }
        "encode" => {
            let pipeline = make_pipeline(args)?;
            let pre = pipeline.preprocess(&instance);
            let text = cnf::dimacs::to_dimacs_string(&pre.cnf);
            match flag(args, "-o") {
                Some(out) => std::fs::write(&out, text).map_err(|e| e.to_string())?,
                None => print!("{text}"),
            }
            eprintln!(
                "c {} vars={} clauses={} preprocess={:?} recipe=[{}]",
                pipeline.name(),
                pre.cnf.num_vars(),
                pre.cnf.num_clauses(),
                pre.preprocess_time,
                pre.recipe
            );
            Ok(ExitCode::SUCCESS)
        }
        "solve" => {
            let pipeline = make_pipeline(args)?;
            let solver = match flag(args, "--solver").as_deref() {
                None | Some("kissat") => SolverConfig::kissat_like(),
                Some("cadical") => SolverConfig::cadical_like(),
                Some(other) => return Err(format!("unknown solver '{other}'")),
            };
            let budget = match flag(args, "--conflicts") {
                Some(n) => Budget::conflicts(n.parse().map_err(|_| "bad conflict budget")?),
                None => Budget::UNLIMITED,
            };
            let pre = pipeline.preprocess(&instance);
            let t0 = std::time::Instant::now();
            let (res, stats) = if args.iter().any(|a| a == "--presolve") {
                sat::presolve::solve_cnf_presolved(
                    &pre.cnf,
                    solver,
                    budget,
                    &sat::presolve::PresolveConfig::default(),
                )
            } else {
                solve_cnf(&pre.cnf, solver, budget)
            };
            let dt = t0.elapsed();
            eprintln!(
                "c {}: vars={} clauses={} decisions={} conflicts={} solve={dt:?}",
                pipeline.name(),
                pre.cnf.num_vars(),
                pre.cnf.num_clauses(),
                stats.decisions,
                stats.conflicts
            );
            match res {
                sat::SolveResult::Sat(model) => {
                    let ins = pre.decoder.decode_inputs(&model);
                    // SAT-competition-style output plus the PI witness.
                    println!("s SATISFIABLE");
                    let bits: Vec<String> = ins
                        .iter()
                        .map(|&b| if b { "1".into() } else { "0".to_string() })
                        .collect();
                    println!("v inputs {}", bits.join(""));
                    // Double-check the witness before reporting success.
                    if instance.eval(&ins).iter().any(|&o| o) {
                        Ok(ExitCode::from(10))
                    } else {
                        Err("internal error: model does not satisfy the instance".into())
                    }
                }
                sat::SolveResult::Unsat => {
                    println!("s UNSATISFIABLE");
                    Ok(ExitCode::from(20))
                }
                sat::SolveResult::Unknown => {
                    println!("s UNKNOWN");
                    Ok(ExitCode::SUCCESS)
                }
            }
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

/// `csat bmc`: incremental bounded model checking / k-induction.
fn run_bmc(path: &str, args: &[String]) -> Result<ExitCode, String> {
    if !path.ends_with(".aag") {
        return Err("bmc needs an ASCII sequential AIGER (.aag) file".into());
    }
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let machine = aig::aiger::read_seq_aag(BufReader::new(file))
        .map_err(|e| format!("cannot parse {path}: {e}"))?;
    if machine.num_pos() == 0 {
        return Err("machine has no real PO to use as a bad signal".into());
    }
    let bound: usize = match flag(args, "--bound") {
        Some(n) => n.parse().map_err(|_| "bad bound")?,
        None => 20,
    };
    let query_budget = match flag(args, "--conflicts") {
        Some(n) => Some(n.parse().map_err(|_| "bad conflict budget")?),
        None => None,
    };
    let preprocess = match flag(args, "--preprocess").as_deref() {
        None | Some("none") => mc::Preprocess::None,
        Some("synth") => mc::Preprocess::Synth(synth::Recipe::size_script()),
        Some("sweep") => mc::Preprocess::Sweep(sweep::FraigParams::default()),
        Some("both") => {
            mc::Preprocess::Both(synth::Recipe::size_script(), sweep::FraigParams::default())
        }
        Some(other) => return Err(format!("unknown preprocess mode '{other}'")),
    };
    eprintln!(
        "c machine: pis={} latches={} pos={} ands={}",
        machine.num_pis(),
        machine.num_latches(),
        machine.num_pos(),
        machine.comb().num_ands()
    );
    let t0 = std::time::Instant::now();
    let (cex, proved, frames) = if args.iter().any(|a| a == "--kind") {
        let opts = mc::KindOptions {
            solver: SolverConfig::default(),
            query_budget,
            preprocess,
        };
        match mc::prove(&machine, bound, &opts) {
            mc::KindResult::Proved { k } => {
                eprintln!("c proved invariant by {k}-induction in {:?}", t0.elapsed());
                (None, true, k)
            }
            mc::KindResult::Cex { depth, trace } => (Some((depth, trace)), false, depth + 1),
            mc::KindResult::Unknown { k } => {
                eprintln!("c inconclusive at strength {k} after {:?}", t0.elapsed());
                println!("s UNKNOWN");
                return Ok(ExitCode::SUCCESS);
            }
        }
    } else {
        let opts = mc::BmcOptions {
            solver: SolverConfig::default(),
            query_budget,
            preprocess,
        };
        let mut engine = mc::BmcEngine::new(&machine, opts);
        match engine.check_frames(bound) {
            mc::BmcResult::Cex { depth, trace } => (Some((depth, trace)), false, depth + 1),
            mc::BmcResult::Clean { frames } => {
                eprintln!(
                    "c no counterexample in {frames} frames ({} conflicts, {:?})",
                    engine.stats().conflicts,
                    t0.elapsed()
                );
                println!("s UNKNOWN");
                return Ok(ExitCode::SUCCESS);
            }
            mc::BmcResult::Unknown { frame } => {
                eprintln!(
                    "c budget exhausted at frame {frame} after {:?}",
                    t0.elapsed()
                );
                println!("s UNKNOWN");
                return Ok(ExitCode::SUCCESS);
            }
        }
    };
    if proved {
        println!("s UNSATISFIABLE");
        eprintln!("c property is invariant (k = {frames})");
        return Ok(ExitCode::from(20));
    }
    let (depth, trace) = cex.expect("non-proved path carries a counterexample");
    // Replay the trace word-level (compiled stepper, trace in bit 0)
    // before reporting it.
    let mut stepper = machine.stepper();
    let mut fired = false;
    for frame in &trace {
        let pis: Vec<u64> = frame.iter().map(|&b| u64::from(b)).collect();
        fired = stepper.step_words(&pis).iter().any(|&w| w & 1 != 0);
    }
    if !fired {
        return Err("internal error: trace does not reach a violation".into());
    }
    eprintln!("c counterexample at depth {depth} in {:?}", t0.elapsed());
    println!("s SATISFIABLE");
    for (t, frame) in trace.iter().enumerate() {
        let bits: Vec<String> = frame
            .iter()
            .map(|&b| if b { "1".into() } else { "0".to_string() })
            .collect();
        println!("v frame {t} inputs {}", bits.join(""));
    }
    Ok(ExitCode::from(10))
}

fn load(path: &str) -> Result<aig::Aig, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut reader = BufReader::new(file);
    let result = if path.ends_with(".aag") {
        aig::aiger::read_aag(&mut reader)
    } else {
        aig::aiger::read_aig_binary(&mut reader)
    };
    result.map_err(|e| format!("cannot parse {path}: {e}"))
}

fn make_pipeline(args: &[String]) -> Result<Box<dyn Pipeline>, String> {
    match flag(args, "--pipeline").as_deref() {
        Some("baseline") => Ok(Box::new(BaselinePipeline)),
        Some("comp") => Ok(Box::new(CompPipeline::default())),
        None | Some("ours") => {
            let recipe: Recipe = flag(args, "--recipe")
                .unwrap_or_else(|| "rs;rs;rw".to_string())
                .parse()
                .map_err(|e| format!("{e}"))?;
            let mut pipeline = FrameworkPipeline::ours(RecipePolicy::Fixed(recipe));
            if args.iter().any(|a| a == "--sweep") {
                pipeline = pipeline.with_sweep(sweep::FraigParams::default());
            }
            Ok(Box::new(pipeline))
        }
        Some(other) => Err(format!("unknown pipeline '{other}'")),
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}
