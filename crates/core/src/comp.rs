//! The *Comp.* pipeline — the Eén–Mishchenko–Sörensson (SAT 2007)
//! circuit-preprocessing baseline the paper compares against.
//!
//! "Applying Logic Synthesis for Speeding Up SAT" minimises the circuit
//! with DAG-aware rewriting and maps it into k-LUTs with a conventional
//! (size-oriented) mapper before CNF conversion. We reproduce that flow
//! with our size script + area-cost mapper; the crucial difference from
//! *Ours* is the optimisation objective: circuit size, not branching
//! complexity.

use crate::pipeline::{Decoder, Pipeline, PreprocessResult};
use aig::Aig;
use cnf::lut_to_cnf_sat_instance;
use mapper::{map_luts, AreaCost, MapParams};
use std::time::Instant;
use synth::Recipe;

/// Size-oriented circuit preprocessing (rewrite/refactor/balance to
/// minimise gates, then area-cost LUT mapping, then CNF).
#[derive(Clone, Debug)]
pub struct CompPipeline {
    /// Mapping parameters (k = 4 matches the paper's setup).
    pub map: MapParams,
    /// Minimisation script.
    pub recipe: Recipe,
}

impl Default for CompPipeline {
    fn default() -> CompPipeline {
        CompPipeline {
            map: MapParams::default(),
            recipe: Recipe::size_script(),
        }
    }
}

impl Pipeline for CompPipeline {
    fn name(&self) -> String {
        "Comp.".to_string()
    }

    fn preprocess(&self, instance: &Aig) -> PreprocessResult {
        let t0 = Instant::now();
        let simplified = self.recipe.apply(instance);
        let net = map_luts(&simplified, &self.map, &AreaCost);
        let (cnf, map) = lut_to_cnf_sat_instance(&net);
        PreprocessResult {
            cnf,
            decoder: Decoder::Lut(map),
            preprocess_time: t0.elapsed(),
            recipe: self.recipe.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::{solve_cnf, Budget, SolverConfig};
    use workloads::datapath::ripple_carry_adder;
    use workloads::lec::{inject_bug, miter};

    #[test]
    fn comp_solves_sat_instance_correctly() {
        let blk = ripple_carry_adder(4);
        let buggy = inject_bug(&blk.aig, 1, 50).expect("bug");
        let inst = miter(&blk.aig, &buggy);
        let out = CompPipeline::default().preprocess(&inst);
        let (res, _) = solve_cnf(&out.cnf, SolverConfig::default(), Budget::UNLIMITED);
        let model = res.model().expect("bug miter is SAT").to_vec();
        let ins = out.decoder.decode_inputs(&model);
        assert_eq!(inst.eval(&ins), vec![true]);
    }

    #[test]
    fn comp_preserves_unsat() {
        use workloads::datapath::carry_lookahead_adder;
        let a = ripple_carry_adder(4);
        let b = carry_lookahead_adder(4);
        let inst = miter(&a.aig, &b.aig);
        let out = CompPipeline::default().preprocess(&inst);
        let (res, _) = solve_cnf(&out.cnf, SolverConfig::default(), Budget::UNLIMITED);
        assert!(res.is_unsat(), "equivalent adders must stay UNSAT");
    }

    #[test]
    fn comp_shrinks_cnf_vs_baseline() {
        let blk = ripple_carry_adder(8);
        let buggy = inject_bug(&blk.aig, 2, 50).expect("bug");
        let inst = miter(&blk.aig, &buggy);
        let base = crate::baseline::BaselinePipeline.preprocess(&inst);
        let comp = CompPipeline::default().preprocess(&inst);
        assert!(
            comp.cnf.num_vars() < base.cnf.num_vars(),
            "LUT mapping must hide variables: {} vs {}",
            comp.cnf.num_vars(),
            base.cnf.num_vars()
        );
    }
}
