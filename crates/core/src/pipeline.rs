//! The pipeline abstraction: AIG in, solver-ready CNF out.

use aig::Aig;
use cnf::{Cnf, LutVarMap, VarMap};
use std::time::Duration;

/// Decodes SAT models back to primary-input assignments, independent of the
/// encoding a pipeline used.
#[derive(Clone, Debug)]
pub enum Decoder {
    /// Tseitin variable map.
    Tseitin(VarMap),
    /// LUT-netlist variable map.
    Lut(LutVarMap),
}

impl Decoder {
    /// Extracts the PI assignment from a solver model
    /// (`model[v-1]` = value of CNF variable `v`).
    pub fn decode_inputs(&self, model: &[bool]) -> Vec<bool> {
        match self {
            Decoder::Tseitin(m) => m.decode_inputs(model),
            Decoder::Lut(m) => m.decode_inputs(model),
        }
    }
}

/// Output of a preprocessing pipeline.
#[derive(Clone, Debug)]
pub struct PreprocessResult {
    /// The CNF handed to the solver (instance satisfaction asserted).
    pub cnf: Cnf,
    /// Model-to-inputs decoder.
    pub decoder: Decoder,
    /// Wall-clock time spent preprocessing (the paper includes this in
    /// total runtime).
    pub preprocess_time: Duration,
    /// Synthesis recipe executed, if any (for reporting).
    pub recipe: String,
}

/// A CSAT preprocessing pipeline.
pub trait Pipeline {
    /// Short name used in reports ("Baseline", "Comp.", "Ours", ...).
    fn name(&self) -> String;

    /// Transforms a CSAT instance into CNF.
    fn preprocess(&self, instance: &Aig) -> PreprocessResult;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::tseitin_sat_instance;

    #[test]
    fn tseitin_decoder_roundtrip() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        g.add_po(x);
        let (_cnf, map) = tseitin_sat_instance(&g);
        let d = Decoder::Tseitin(map);
        // Model: both PIs true (vars 1 and 2), gate var true.
        let ins = d.decode_inputs(&[true, true, true]);
        assert_eq!(ins, vec![true, true]);
    }
}
