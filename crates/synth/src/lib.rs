//! # `synth` — logic synthesis over AIGs
//!
//! Ports of the four synthesis operations the paper's RL agent chooses from
//! (Sec. III-B3), plus the machinery they share:
//!
//! * [`balance`] — delay-minimal AND-tree re-balancing,
//! * [`rewrite`] — DAG-aware 4-cut NPN rewriting,
//! * [`refactor`] — MFFC re-factoring through ISOP/algebraic factoring,
//! * [`resub`] — window-based resubstitution,
//! * [`recipe`] — the action enum and sequence runner ("synthesis recipes"),
//! * [`plan`] — the replacement-plan rebuild engine all passes share,
//! * [`dsd`]/[`factor`] — truth-table-to-structure generators,
//! * [`rewrite_lib`] — the lazily built NPN-class structure library.
//!
//! Every pass returns a new, structurally hashed, functionally equivalent
//! graph; equivalence is enforced by construction and double-checked in the
//! test-suites by exhaustive/random simulation and (in the integration
//! suite) SAT miters.
//!
//! ```
//! use aig::Aig;
//! use synth::{balance, rewrite, RewriteParams};
//!
//! let mut g = Aig::new();
//! let pis = g.add_pis(8);
//! let all = g.and_many(&pis);
//! g.add_po(all);
//! let g = balance(&g);
//! let g = rewrite(&g, &RewriteParams::default());
//! assert_eq!(g.num_pos(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod balance;
pub mod builder;
pub mod dsd;
pub mod factor;
pub mod plan;
pub mod recipe;
mod refactor;
mod resub;
mod rewrite;
pub mod rewrite_lib;

pub use balance::balance;
pub use recipe::{apply_op, apply_recipe, Recipe, SynthOp};
pub use refactor::{refactor, RefactorParams};
pub use resub::{resub, ResubParams};
pub use rewrite::{rewrite, RewriteParams};
