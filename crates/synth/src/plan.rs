//! Replacement plans and the graph-rebuild engine.
//!
//! Every resynthesis pass in this crate (rewrite, refactor, resub) works in
//! two phases: first it analyses the *old* graph and records, per node, a
//! [`Choice`] — keep the node as-is, or realise it as a small structure over
//! other (strictly earlier) nodes. Then [`rebuild`] reconstructs a fresh,
//! structurally hashed graph *on demand from the POs*: nodes nobody asks for
//! (the MFFCs of replaced nodes, and any dead logic) are simply never built.
//!
//! Demanding only earlier nodes makes the dependency relation acyclic, so
//! the rebuild is a straightforward worklist evaluation.

use aig::{Aig, GateList, Lit, Var};

/// Per-node reconstruction choice.
#[derive(Clone, Debug)]
pub enum Choice {
    /// Rebuild the node from its original fanins.
    Copy,
    /// Realise the node's function as `gl` instantiated over `leaves`
    /// (literals of the *old* graph, each with node index strictly below
    /// the owning node).
    Structure {
        /// Old-graph leaf literals of the structure.
        leaves: Vec<Lit>,
        /// The replacement structure.
        gl: GateList,
    },
}

/// Rebuilds `aig` according to `choices` (one entry per node; PIs and the
/// constant node must be [`Choice::Copy`]).
///
/// All PIs are preserved in order. Returns the new graph.
///
/// # Panics
/// Panics if a structure's leaves do not all have node index strictly below
/// the owning node, or if `choices.len() != aig.num_nodes()`.
pub fn rebuild(aig: &Aig, choices: &[Choice]) -> Aig {
    assert_eq!(
        choices.len(),
        aig.num_nodes(),
        "one choice per node required"
    );
    let mut new = Aig::with_capacity(aig.num_nodes());
    let mut map: Vec<Option<Lit>> = vec![None; aig.num_nodes()];
    map[0] = Some(Lit::FALSE);
    for &pi in aig.pis() {
        map[pi as usize] = Some(new.add_pi());
    }

    let mut stack: Vec<Var> = Vec::new();
    let mut deps: Vec<Var> = Vec::new();
    for &po in aig.pos() {
        resolve(
            aig,
            choices,
            &mut new,
            &mut map,
            &mut stack,
            &mut deps,
            po.var(),
        );
    }
    for &po in aig.pos() {
        let l = map[po.var() as usize].expect("PO resolved");
        new.add_po(l.xor_compl(po.is_compl()));
    }
    new
}

#[allow(clippy::too_many_arguments)]
fn resolve(
    aig: &Aig,
    choices: &[Choice],
    new: &mut Aig,
    map: &mut [Option<Lit>],
    stack: &mut Vec<Var>,
    deps: &mut Vec<Var>,
    root: Var,
) {
    if map[root as usize].is_some() {
        return;
    }
    stack.push(root);
    while let Some(&v) = stack.last() {
        if map[v as usize].is_some() {
            stack.pop();
            continue;
        }
        debug_assert!(aig.node(v).is_and(), "PIs/const are pre-mapped");
        deps.clear();
        match &choices[v as usize] {
            Choice::Copy => {
                let n = aig.node(v);
                deps.push(n.fanin0().var());
                deps.push(n.fanin1().var());
            }
            Choice::Structure { leaves, .. } => deps.extend(leaves.iter().map(|l| l.var())),
        }
        let mut pending = false;
        for &d in deps.iter() {
            assert!(d < v, "plan leaves must precede the node (no cycles)");
            if map[d as usize].is_none() {
                stack.push(d);
                pending = true;
            }
        }
        if pending {
            continue;
        }
        // All dependencies available: build.
        let lit = match &choices[v as usize] {
            Choice::Copy => {
                let n = aig.node(v);
                let f0 = mapped(map, n.fanin0());
                let f1 = mapped(map, n.fanin1());
                new.and(f0, f1)
            }
            Choice::Structure { leaves, gl } => {
                let ls: Vec<Lit> = leaves.iter().map(|&l| mapped(map, l)).collect();
                new.build_gatelist(&ls, gl)
            }
        };
        map[v as usize] = Some(lit);
        stack.pop();
    }
}

#[inline]
fn mapped(map: &[Option<Lit>], old: Lit) -> Lit {
    map[old.var() as usize]
        .expect("dependency resolved")
        .xor_compl(old.is_compl())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::check::exhaustive_equiv;

    fn all_copy(aig: &Aig) -> Vec<Choice> {
        vec![Choice::Copy; aig.num_nodes()]
    }

    #[test]
    fn copy_plan_preserves_function_and_drops_dead() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let live = g.xor(a, b);
        let _dead = g.and(a, b); // xor shares this? xor builds !a&b etc; add distinct dead node
        let _dead2 = g.or(a, !b);
        g.add_po(live);
        let h = rebuild(&g, &all_copy(&g));
        assert!(exhaustive_equiv(&g, &h));
        assert!(h.num_ands() <= g.num_ands());
    }

    #[test]
    fn structure_replacement_applies() {
        // Replace x = a&b by the (equivalent) structure !(!a | !b).
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        let y = g.or(x, a);
        g.add_po(y);
        let mut choices = all_copy(&g);
        // Structure: one AND of leaves (a, b); root = that gate.
        let gl = GateList {
            n_leaves: 2,
            gates: vec![(0, 2)],
            root: 2 << 1,
        };
        choices[x.var() as usize] = Choice::Structure {
            leaves: vec![a, b],
            gl,
        };
        let h = rebuild(&g, &choices);
        assert!(exhaustive_equiv(&g, &h));
    }

    #[test]
    fn zero_gate_structure_forwards_literal() {
        // Replace a node by a plain (complemented) literal of another node,
        // as 0-resubstitution does.
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let t = g.and(a, b);
        let dup = g.and(!a, !b); // t2 = !a & !b ; note !(t2) == a | b
        let out = g.and(!t, !dup); // out = !t & (a|b) = exactly-one(a,b) = a^b
        g.add_po(out);
        // Pretend resub discovered out == a ^ b and forwards `dup` as !(a|b)
        // rebuilt from scratch: replace `out` with or-structure over [t, dup].
        // out = !t & !dup  -> structure gate (leaf0 compl, leaf1 compl).
        let gl = GateList {
            n_leaves: 2,
            gates: vec![(1, 3)],
            root: 2 << 1,
        };
        let mut choices = all_copy(&g);
        choices[out.var() as usize] = Choice::Structure {
            leaves: vec![t, dup],
            gl,
        };
        let h = rebuild(&g, &choices);
        assert!(exhaustive_equiv(&g, &h));

        // A genuinely zero-gate forward: replace `dup` by constant-free
        // literal of `t`'s complement is wrong functionally; instead forward
        // `out` directly to itself through a 1-leaf identity structure.
        let ident = GateList {
            n_leaves: 1,
            gates: vec![],
            root: 0,
        };
        let mut choices = all_copy(&g);
        choices[out.var() as usize] = Choice::Structure {
            leaves: vec![out.regular()],
            gl: ident,
        };
        // Self-reference is illegal (leaf index not below node) — expect panic.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rebuild(&g, &choices)));
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "precede the node")]
    fn forward_reference_panics() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        let y = g.or(x, a);
        g.add_po(x);
        g.add_po(y);
        let mut choices = all_copy(&g);
        // Illegal: x tries to reference the later node y.
        let gl = GateList {
            n_leaves: 1,
            gates: vec![],
            root: 0,
        };
        choices[x.var() as usize] = Choice::Structure {
            leaves: vec![y],
            gl,
        };
        let _ = rebuild(&g, &choices);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let mut acc = g.and(a, b);
        for i in 0..50_000 {
            acc = if i % 2 == 0 {
                g.or(acc, a)
            } else {
                g.and(acc, b)
            };
        }
        g.add_po(acc);
        let h = rebuild(&g, &all_copy(&g));
        assert_eq!(h.num_pos(), 1);
    }
}
