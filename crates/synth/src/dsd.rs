//! Truth-table resynthesis: decomposition-based structure generation.
//!
//! Converts an arbitrary function (as a [`Tt`]) into a compact [`GateList`].
//! The recursion tries, in order: constants, single literals, top-level
//! AND/OR/XOR decompositions on each support variable, and finally a Shannon
//! expansion (MUX) on the most binate variable, memoising sub-functions so
//! shared cofactors become shared gates.
//!
//! Together with the algebraic factoring of [`crate::factor`], this is the
//! structure generator behind the NPN rewriting library and refactoring.

use crate::builder::{sig_not, Sig, StructBuilder, SIG_FALSE, SIG_TRUE};
use aig::hash::FastMap;
use aig::{GateList, Tt};

/// Synthesises a gate structure for `f` by recursive decomposition.
///
/// The structure has `f.nvars()` leaves; leaves outside the support are
/// simply unused.
pub fn decompose(f: &Tt) -> GateList {
    let mut b = StructBuilder::new(f.nvars());
    let mut memo: FastMap<Tt, Sig> = FastMap::default();
    let root = decompose_rec(f, &mut b, &mut memo);
    b.finish(root)
}

fn decompose_rec(f: &Tt, b: &mut StructBuilder, memo: &mut FastMap<Tt, Sig>) -> Sig {
    if f.is_zero() {
        return SIG_FALSE;
    }
    if f.is_one() {
        return SIG_TRUE;
    }
    if let Some(&s) = memo.get(f) {
        return s;
    }
    let nf = !f;
    if let Some(&s) = memo.get(&nf) {
        return sig_not(s);
    }

    let sup = f.support();
    debug_assert!(!sup.is_empty());
    // Single literal?
    if sup.len() == 1 {
        let v = sup[0];
        let s = if f.bit(1 << v) {
            b.leaf(v)
        } else {
            sig_not(b.leaf(v))
        };
        memo.insert(f.clone(), s);
        return s;
    }

    // Top decomposition on each support variable.
    for &v in &sup {
        let c0 = f.cofactor0(v);
        let c1 = f.cofactor1(v);
        let lv = b.leaf(v);
        let s = if c0.is_zero() {
            // f = v & c1
            let inner = decompose_rec(&c1, b, memo);
            Some(b.and(lv, inner))
        } else if c1.is_zero() {
            // f = !v & c0
            let inner = decompose_rec(&c0, b, memo);
            Some(b.and(sig_not(lv), inner))
        } else if c0.is_one() {
            // f = !v | c1
            let inner = decompose_rec(&c1, b, memo);
            Some(b.or(sig_not(lv), inner))
        } else if c1.is_one() {
            // f = v | c0
            let inner = decompose_rec(&c0, b, memo);
            Some(b.or(lv, inner))
        } else if c0 == !&c1 {
            // f = v ^ c0
            let inner = decompose_rec(&c0, b, memo);
            Some(b.xor(lv, inner))
        } else {
            None
        };
        if let Some(s) = s {
            memo.insert(f.clone(), s);
            return s;
        }
    }

    // Shannon expansion on the most binate variable (largest on-set change).
    let v = *sup
        .iter()
        .max_by_key(|&&v| {
            let c0 = f.cofactor0(v);
            let c1 = f.cofactor1(v);
            let d = &c0 ^ &c1;
            d.count_ones()
        })
        .expect("non-empty support");
    let c0 = f.cofactor0(v);
    let c1 = f.cofactor1(v);
    let s0 = decompose_rec(&c0, b, memo);
    let s1 = decompose_rec(&c1, b, memo);
    let lv = b.leaf(v);
    let s = b.mux(lv, s1, s0);
    memo.insert(f.clone(), s);
    s
}

/// Evaluates a gate structure on Boolean leaf values (reference semantics,
/// shared by the test-suites of this crate).
pub fn eval_gatelist(gl: &GateList, leaves: &[bool]) -> bool {
    assert_eq!(leaves.len(), gl.n_leaves, "leaf count mismatch");
    let mut vals: Vec<bool> = leaves.to_vec();
    let dec = |vals: &[bool], s: Sig| -> bool {
        match s {
            SIG_FALSE => false,
            SIG_TRUE => true,
            _ => vals[(s >> 1) as usize] ^ (s & 1 != 0),
        }
    };
    for &(a, bb) in &gl.gates {
        let v = dec(&vals, a) & dec(&vals, bb);
        vals.push(v);
    }
    dec(&vals, gl.root)
}

/// The truth table computed by a gate structure (for verification).
pub fn gatelist_tt(gl: &GateList) -> Tt {
    let n = gl.n_leaves;
    let mut out = Tt::zero(n);
    for m in 0..(1usize << n) {
        let leaves: Vec<bool> = (0..n).map(|i| m >> i & 1 != 0).collect();
        if eval_gatelist(gl, &leaves) {
            out.set_bit(m, true);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_3var_functions_roundtrip() {
        for bits in 0..256u64 {
            let f = Tt::from_u64(3, bits);
            let gl = decompose(&f);
            assert_eq!(gatelist_tt(&gl), f, "bits={bits:#x}");
        }
    }

    #[test]
    fn random_4_to_8_var_roundtrip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for n in 4..=8usize {
            for _ in 0..25 {
                let words = (0..(if n <= 6 { 1 } else { 1 << (n - 6) }))
                    .map(|_| rng.gen())
                    .collect();
                let f = Tt::from_words(n, words);
                let gl = decompose(&f);
                assert_eq!(gatelist_tt(&gl), f, "n={n}");
            }
        }
    }

    #[test]
    fn and_gate_costs_one() {
        let f = Tt::var(2, 0) & Tt::var(2, 1);
        assert_eq!(decompose(&f).size(), 1);
    }

    #[test]
    fn xor_gate_costs_three() {
        let f = Tt::var(2, 0) ^ Tt::var(2, 1);
        assert_eq!(decompose(&f).size(), 3);
    }

    #[test]
    fn constants_cost_zero() {
        assert_eq!(decompose(&Tt::zero(4)).size(), 0);
        assert_eq!(decompose(&Tt::one(4)).size(), 0);
        assert_eq!(decompose(&Tt::var(4, 2)).size(), 0);
    }

    #[test]
    fn shared_cofactors_are_shared_gates() {
        // f = (a & b) ^ c, with xor forcing Shannon/xor paths that reuse a&b.
        let ab = Tt::var(3, 0) & Tt::var(3, 1);
        let f = &ab ^ &Tt::var(3, 2);
        let gl = decompose(&f);
        // a&b, then xor with c: 1 + 3 = 4 gates max.
        assert!(gl.size() <= 4, "got {}", gl.size());
        assert_eq!(gatelist_tt(&gl), f);
    }

    #[test]
    fn majority_is_compact() {
        let (a, b, c) = (Tt::var(3, 0), Tt::var(3, 1), Tt::var(3, 2));
        let maj = (&(&a & &b) | &(&b & &c)) | (&a & &c);
        let gl = decompose(&maj);
        assert_eq!(gatelist_tt(&gl), maj);
        assert!(
            gl.size() <= 6,
            "majority should need few gates, got {}",
            gl.size()
        );
    }
}
