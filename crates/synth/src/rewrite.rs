//! DAG-aware 4-cut NPN rewriting (`rewrite`).
//!
//! For every AND node, each enumerated 4-feasible cut's function is NPN
//! canonised and looked up in the structure library; the candidate's cost is
//! measured by a dry-run build against the existing graph (gates that
//! already exist — outside the node's MFFC — are free), and the node is
//! replaced when the saving is positive. This is the reconstruction
//! formulation of Mishchenko–Chatterjee–Brayton's DAG-aware rewriting.

use crate::builder::sig_not;
use crate::plan::{rebuild, Choice};
use crate::rewrite_lib::npn_structure;
use aig::cut::{cut_function, enumerate_cuts, CutParams};
use aig::hash::FastSet;
use aig::mffc::Mffc;
use aig::npn::npn_canon_cached;
use aig::{Aig, GateList, Lit, Var};

/// Parameters of the rewriting pass.
#[derive(Clone, Copy, Debug)]
pub struct RewriteParams {
    /// Accept replacements with zero estimated gain (ABC's `rewrite -z`),
    /// useful as a perturbation before further passes.
    pub zero_gain: bool,
    /// Priority cuts kept per node.
    pub max_cuts: usize,
}

impl Default for RewriteParams {
    fn default() -> RewriteParams {
        RewriteParams {
            zero_gain: false,
            max_cuts: 8,
        }
    }
}

/// Rewrites the graph, returning a functionally equivalent one.
pub fn rewrite(aig: &Aig, params: &RewriteParams) -> Aig {
    let cuts = enumerate_cuts(
        aig,
        &CutParams {
            k: 4,
            max_cuts: params.max_cuts,
        },
    );
    let mut mffc = Mffc::new(aig);
    let fanout = aig.fanout_counts();
    let mut choices: Vec<Choice> = vec![Choice::Copy; aig.num_nodes()];

    for v in aig.iter_ands() {
        if fanout[v as usize] == 0 {
            continue; // dead logic disappears in the rebuild anyway
        }
        let mut best: Option<(i64, Vec<Lit>, GateList)> = None;
        for cut in &cuts[v as usize] {
            let nl = cut.size();
            if nl < 2 || cut.leaves() == [v] {
                continue;
            }
            // Nodes that disappear if v is re-expressed over this cut.
            let cone: Vec<Var> = mffc.cone_collect(aig, v, cut.leaves());
            let cone_set: FastSet<Var> = cone.iter().copied().collect();
            let f = cut_function(aig, v, cut.leaves());
            let f4 = f.extend_to(4);
            let (canon, tr) = npn_canon_cached(f4.to_u16());
            let gl = npn_structure(canon);
            // Concrete leaves, padded to 4 with constant-false.
            let mut leaves4 = [Lit::FALSE; 4];
            for (i, &l) in cut.leaves().iter().enumerate() {
                leaves4[i] = Lit::from_var(l, false);
            }
            let (w, out_compl) = tr.instantiate(&leaves4);
            let cost = dry_run_cost(aig, &w, &gl, &cone_set);
            let gain = cone.len() as i64 - cost as i64;
            let better = match &best {
                None => true,
                Some((g, _, _)) => gain > *g,
            };
            if better {
                let rooted = GateList {
                    root: if out_compl { sig_not(gl.root) } else { gl.root },
                    ..gl
                };
                best = Some((gain, w.to_vec(), rooted));
            }
        }

        if let Some((gain, leaves, gl)) = best {
            let threshold = if params.zero_gain { 0 } else { 1 };
            if gain >= threshold {
                choices[v as usize] = Choice::Structure { leaves, gl };
            }
        }
    }

    rebuild(aig, &choices)
}

/// Counts how many *new* AND gates instantiating `gl` over `leaves` would
/// create, crediting structure gates that already exist in the graph
/// (outside `excluded`, typically the MFFC being replaced).
fn dry_run_cost(aig: &Aig, leaves: &[Lit], gl: &GateList, excluded: &FastSet<Var>) -> usize {
    // Each signal is either a known old-graph literal or a new node.
    let mut sigs: Vec<Option<Lit>> = leaves.iter().map(|&l| Some(l)).collect();
    let decode = |sigs: &[Option<Lit>], s: u32| -> Option<Lit> {
        match s {
            GateList::FALSE => Some(Lit::FALSE),
            GateList::TRUE => Some(Lit::TRUE),
            _ => sigs[(s >> 1) as usize].map(|l| l.xor_compl(s & 1 != 0)),
        }
    };
    let mut cost = 0usize;
    for &(a, b) in &gl.gates {
        let la = decode(&sigs, a);
        let lb = decode(&sigs, b);
        let out = match (la, lb) {
            (Some(x), Some(y)) => match aig.find_and(x, y) {
                Some(l) if l.is_const() => Some(l), // folded away: free
                Some(l) if !excluded.contains(&l.var()) => Some(l),
                Some(_) => {
                    cost += 1;
                    None
                }
                None => {
                    cost += 1;
                    None
                }
            },
            _ => {
                cost += 1;
                None
            }
        };
        sigs.push(out);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::check::{exhaustive_equiv, sim_equiv};

    fn random_aig(seed: u64, n_pis: usize, n_gates: usize) -> Aig {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = Aig::new();
        let pis = g.add_pis(n_pis);
        let mut pool: Vec<Lit> = pis;
        for _ in 0..n_gates {
            let a = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
            let b = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
            let l = match rng.gen_range(0..4) {
                0 | 1 => g.and(a, b),
                2 => g.or(a, b),
                _ => g.xor(a, b),
            };
            pool.push(l);
        }
        let n = pool.len();
        g.add_po(pool[n - 1]);
        g.add_po(pool[n.saturating_sub(3)]);
        g
    }

    #[test]
    fn preserves_function_small() {
        for seed in 0..8 {
            let g = random_aig(seed, 6, 40);
            let h = rewrite(&g, &RewriteParams::default());
            assert!(exhaustive_equiv(&g, &h), "seed {seed}");
        }
    }

    #[test]
    fn preserves_function_larger_sim() {
        for seed in 100..103 {
            let g = random_aig(seed, 24, 400);
            let h = rewrite(&g, &RewriteParams::default());
            assert!(sim_equiv(&g, &h, 8, seed), "seed {seed}");
        }
    }

    #[test]
    fn reduces_redundant_logic() {
        // Build something deliberately redundant: mux(s, x, x) trees and
        // double negations through and-chains.
        let mut g = Aig::new();
        let pis = g.add_pis(4);
        let x = g.xor(pis[0], pis[1]);
        let m = g.mux(pis[2], x, x); // = x, but structurally bigger
        let y = g.and(m, pis[3]);
        g.add_po(y);
        let before = g.num_ands();
        let h = rewrite(&g, &RewriteParams::default());
        assert!(exhaustive_equiv(&g, &h));
        assert!(
            h.num_ands() <= before,
            "rewrite must not grow: {} -> {}",
            before,
            h.num_ands()
        );
    }

    #[test]
    fn zero_gain_allowed_still_equivalent() {
        let g = random_aig(7, 8, 80);
        let h = rewrite(
            &g,
            &RewriteParams {
                zero_gain: true,
                max_cuts: 8,
            },
        );
        assert!(sim_equiv(&g, &h, 8, 1234));
    }

    #[test]
    fn idempotent_convergence() {
        let g = random_aig(42, 8, 120);
        let h1 = rewrite(&g, &RewriteParams::default());
        let h2 = rewrite(&h1, &RewriteParams::default());
        let h3 = rewrite(&h2, &RewriteParams::default());
        assert!(sim_equiv(&g, &h3, 8, 5));
        // The pass chain must not blow the graph up overall.
        assert!(
            h3.num_ands() <= g.num_ands(),
            "{} -> {}",
            g.num_ands(),
            h3.num_ands()
        );
    }
}
