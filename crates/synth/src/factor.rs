//! Algebraic factoring of ISOP covers — the classic `refactor` generator.
//!
//! Following Brayton's decomposition/factorisation line (the paper's
//! `refactor` citation), a sum-of-products cover is turned into a factored
//! form by *literal division*: pick the most frequent literal `l`, split the
//! cover into `l · Q + R`, and recurse. The factored form is then emitted
//! as an AND/OR structure via [`StructBuilder`].
//!
//! [`best_structure`] combines this generator with the decomposition engine
//! of [`crate::dsd`] and returns the smaller result — our stand-in for the
//! pre-computed optimal structures of ABC's rewriting library.

use crate::builder::{sig_not, Sig, StructBuilder, SIG_FALSE, SIG_TRUE};
use aig::{Cube, GateList, Tt};

/// Synthesises a structure for `f` via algebraic factoring of its ISOP.
///
/// Both `f` and `!f` are factored; the smaller structure (complemented back
/// if needed) wins.
pub fn factor(f: &Tt) -> GateList {
    let pos = factor_cover(f.nvars(), &f.isop());
    let neg = factor_cover(f.nvars(), &(!f).isop());
    if pos.size() <= neg.size() {
        pos
    } else {
        GateList {
            root: flip_root(neg.root),
            ..neg
        }
    }
}

fn flip_root(root: Sig) -> Sig {
    sig_not(root)
}

fn factor_cover(nvars: usize, cover: &[Cube]) -> GateList {
    let mut b = StructBuilder::new(nvars);
    let root = factor_rec(cover, &mut b);
    b.finish(root)
}

fn factor_rec(cover: &[Cube], b: &mut StructBuilder) -> Sig {
    if cover.is_empty() {
        return SIG_FALSE;
    }
    if cover.iter().any(|c| c.mask == 0) {
        return SIG_TRUE; // tautology cube
    }
    if cover.len() == 1 {
        return build_cube(&cover[0], b);
    }
    // Most frequent literal over the cover.
    let (var, positive) = most_frequent_literal(cover);
    let mut quotient = Vec::new();
    let mut remainder = Vec::new();
    let bit = 1u32 << var;
    for c in cover {
        if c.mask & bit != 0 && (c.vals & bit != 0) == positive {
            let mut q = *c;
            q.mask &= !bit;
            q.vals &= !bit;
            quotient.push(q);
        } else {
            remainder.push(*c);
        }
    }
    debug_assert!(!quotient.is_empty());
    let q_sig = factor_rec(&quotient, b);
    let lit_sig = if positive {
        b.leaf(var)
    } else {
        sig_not(b.leaf(var))
    };
    let lhs = b.and(lit_sig, q_sig);
    if remainder.is_empty() {
        lhs
    } else {
        let r_sig = factor_rec(&remainder, b);
        b.or(lhs, r_sig)
    }
}

fn build_cube(c: &Cube, b: &mut StructBuilder) -> Sig {
    let mut acc = SIG_TRUE;
    for (v, pos) in c.lits() {
        let l = if pos { b.leaf(v) } else { sig_not(b.leaf(v)) };
        acc = b.and(acc, l);
    }
    acc
}

fn most_frequent_literal(cover: &[Cube]) -> (usize, bool) {
    let mut best = (0usize, true);
    let mut best_count = 0usize;
    for v in 0..32 {
        let bit = 1u32 << v;
        let mut pos = 0usize;
        let mut neg = 0usize;
        for c in cover {
            if c.mask & bit != 0 {
                if c.vals & bit != 0 {
                    pos += 1;
                } else {
                    neg += 1;
                }
            }
        }
        if pos > best_count {
            best_count = pos;
            best = (v, true);
        }
        if neg > best_count {
            best_count = neg;
            best = (v, false);
        }
    }
    debug_assert!(best_count > 0, "cover with no literals");
    best
}

/// The best structure we can synthesise for `f`: the smaller of the
/// decomposition-based and factoring-based results.
pub fn best_structure(f: &Tt) -> GateList {
    let d = crate::dsd::decompose(f);
    let a = factor(f);
    if d.size() <= a.size() {
        d
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsd::gatelist_tt;

    #[test]
    fn all_3var_functions_roundtrip() {
        for bits in 0..256u64 {
            let f = Tt::from_u64(3, bits);
            let gl = factor(&f);
            assert_eq!(gatelist_tt(&gl), f, "bits={bits:#x}");
        }
    }

    #[test]
    fn random_roundtrip_4_to_8() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        for n in 4..=8usize {
            for _ in 0..20 {
                let words = (0..(if n <= 6 { 1 } else { 1 << (n - 6) }))
                    .map(|_| rng.gen())
                    .collect();
                let f = Tt::from_words(n, words);
                let gl = factor(&f);
                assert_eq!(gatelist_tt(&gl), f, "n={n}");
            }
        }
    }

    #[test]
    fn sop_friendly_functions_factor_well() {
        // f = a·b + a·c + a·d factors as a·(b + c + d): 3 gates.
        let n = 4;
        let a = Tt::var(n, 0);
        let f = (&(&a & &Tt::var(n, 1)) | &(&a & &Tt::var(n, 2))) | (&a & &Tt::var(n, 3));
        let gl = factor(&f);
        assert_eq!(gatelist_tt(&gl), f);
        assert!(
            gl.size() <= 3,
            "kernel extraction expected, got {}",
            gl.size()
        );
    }

    #[test]
    fn best_structure_roundtrips_and_is_minimal_of_both() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(34);
        for _ in 0..50 {
            let f = Tt::from_u64(4, rng.gen::<u64>() & 0xFFFF);
            let b = best_structure(&f);
            assert_eq!(gatelist_tt(&b), f);
            assert!(b.size() <= crate::dsd::decompose(&f).size());
            assert!(b.size() <= factor(&f).size());
        }
    }

    #[test]
    fn constants_and_literals() {
        assert_eq!(factor(&Tt::zero(3)).size(), 0);
        assert_eq!(factor(&Tt::one(3)).size(), 0);
        let f = !Tt::var(3, 1);
        let gl = factor(&f);
        assert_eq!(gl.size(), 0);
        assert_eq!(gatelist_tt(&gl), f);
    }
}
