//! Window-based Boolean resubstitution (`resub`).
//!
//! For each node, a window is built from a reconvergence-driven cut; the
//! truth tables of every window node over the cut leaves are computed, and
//! the engine looks for *divisors* — existing nodes (outside the logic that
//! would disappear) whose functions re-express the target:
//!
//! * **0-resub**: the target equals a divisor (possibly complemented) — the
//!   node is forwarded for free;
//! * **1-resub**: the target is the AND/OR of two divisors in some polarity
//!   — one fresh gate replaces the whole cone.
//!
//! This follows the permissible-function resubstitution lineage the paper
//! cites (Sato et al.) in its windowed, truth-table-driven ABC form.

use crate::plan::{rebuild, Choice};
use crate::refactor::reconvergence_cut;
use aig::hash::FastSet;
use aig::mffc::Mffc;
use aig::sim::random_signatures;
use aig::{Aig, GateList, Lit, Tt, Var};

/// Words of global random simulation behind the divisor filter.
const SIG_WORDS: usize = 4;
/// Seed of the filter signatures (fixed: resub stays deterministic).
const SIG_SEED: u64 = 0x5e5b_51f7;

/// Parameters of the resubstitution pass.
#[derive(Clone, Copy, Debug)]
pub struct ResubParams {
    /// Maximum leaves of the window cut (hard cap 12).
    pub max_leaves: usize,
    /// Maximum divisors examined per node.
    pub max_divisors: usize,
}

impl Default for ResubParams {
    fn default() -> ResubParams {
        ResubParams {
            max_leaves: 8,
            max_divisors: 64,
        }
    }
}

/// Resubstitutes nodes from existing logic, returning an equivalent graph.
///
/// # Panics
/// Panics if `params.max_leaves` is outside `2..=12`.
pub fn resub(aig: &Aig, params: &ResubParams) -> Aig {
    assert!(
        (2..=12).contains(&params.max_leaves),
        "max_leaves must be in 2..=12 (truth-table bound)"
    );
    let mut mffc = Mffc::new(aig);
    let fanout = aig.fanout_counts();
    let fanout_lists = aig.fanout_lists();
    let mut choices: Vec<Choice> = vec![Choice::Copy; aig.num_nodes()];
    // Global random signatures, computed once into one strided matrix.
    // Window-TT equality implies global-function equality, so a signature
    // mismatch soundly rejects a candidate before any truth-table work.
    let sigs = random_signatures(aig, SIG_WORDS, SIG_SEED);
    let mask = |c: bool| if c { !0u64 } else { 0 };

    for v in aig.iter_ands() {
        if fanout[v as usize] == 0 {
            continue;
        }
        let leaves = reconvergence_cut(aig, v, params.max_leaves);
        if leaves.len() < 2 {
            continue;
        }
        let cone: Vec<Var> = mffc.cone_collect(aig, v, &leaves);
        if cone.is_empty() {
            continue;
        }
        let cone_set: FastSet<Var> = cone.iter().copied().collect();

        // Window truth tables: evaluate the whole cone between leaves and v,
        // keeping every intermediate node as a divisor candidate.
        let (mut tts, order) = window_tts(aig, v, &leaves);
        let ft = tts[&v].clone();

        // Divisors: the cut leaves themselves, plus window nodes that
        // survive the replacement (not in the disappearing cone), strictly
        // below v...
        let mut divisors: Vec<Var> = order
            .iter()
            .copied()
            .filter(|&d| d != v && d < v && !cone_set.contains(&d))
            .collect();
        debug_assert!(
            leaves.iter().all(|l| divisors.contains(l)),
            "leaves are divisors"
        );
        // ...plus *side* divisors: logic outside the cone whose support lies
        // within the cut, grown by walking fanouts of known-table nodes.
        let mut frontier: Vec<Var> = divisors.clone();
        frontier.extend_from_slice(&leaves);
        let mut qi = 0;
        while qi < frontier.len() && divisors.len() < params.max_divisors {
            let d = frontier[qi];
            qi += 1;
            for &c in &fanout_lists[d as usize] {
                if c >= v || cone_set.contains(&c) || tts.contains_key(&c) {
                    continue;
                }
                let n = aig.node(c);
                let (a, b) = (n.fanin0(), n.fanin1());
                let (Some(ta), Some(tb)) = (tts.get(&a.var()), tts.get(&b.var())) else {
                    continue;
                };
                let ta = if a.is_compl() { !ta } else { ta.clone() };
                let tb = if b.is_compl() { !tb } else { tb.clone() };
                tts.insert(c, ta & tb);
                divisors.push(c);
                frontier.push(c);
            }
        }
        divisors.truncate(params.max_divisors);

        // 0-resub. The signature filter rejects non-candidates with a few
        // word compares; the window truth table confirms survivors.
        let rv = sigs.row(v as usize);
        let mut chosen: Option<(Vec<Lit>, GateList)> = None;
        for &d in &divisors {
            let rd = sigs.row(d as usize);
            let direct = rd.iter().zip(rv).all(|(&x, &y)| x == y);
            let compl = !direct && rd.iter().zip(rv).all(|(&x, &y)| x == !y);
            if !direct && !compl {
                continue;
            }
            let td = &tts[&d];
            if *td == ft {
                chosen = Some((vec![Lit::from_var(d, false)], identity_gl(false)));
                break;
            }
            if !td == ft {
                chosen = Some((vec![Lit::from_var(d, false)], identity_gl(true)));
                break;
            }
        }

        // 1-resub: only profitable when at least two nodes disappear.
        if chosen.is_none() && cone.len() >= 2 {
            'outer: for i in 0..divisors.len() {
                for j in (i + 1)..divisors.len() {
                    let (da, db) = (divisors[i], divisors[j]);
                    let (ra, rb) = (sigs.row(da as usize), sigs.row(db as usize));
                    for (ca, cb, co) in POLARITIES {
                        // Word-parallel signature filter: the candidate's
                        // global signature must reproduce the target's
                        // before any truth table is materialised.
                        let (ma, mb, mo) = (mask(ca), mask(cb), mask(co));
                        let sig_ok = ra
                            .iter()
                            .zip(rb)
                            .zip(rv)
                            .all(|((&wa, &wb), &wv)| ((wa ^ ma) & (wb ^ mb)) ^ mo == wv);
                        if !sig_ok {
                            continue;
                        }
                        let (ta, tb) = (&tts[&da], &tts[&db]);
                        let fa = if ca { !ta } else { ta.clone() };
                        let fb = if cb { !tb } else { tb.clone() };
                        let mut f = fa & fb;
                        if co {
                            f = !f;
                        }
                        if f == ft {
                            chosen = Some((
                                vec![Lit::from_var(da, ca), Lit::from_var(db, cb)],
                                and2_gl(co),
                            ));
                            break 'outer;
                        }
                    }
                }
            }
        }

        if let Some((leaves, gl)) = chosen {
            choices[v as usize] = Choice::Structure { leaves, gl };
        }
    }

    rebuild(aig, &choices)
}

/// All input/output polarity combinations for 1-resub. `(ca, cb, co)` tries
/// `co ^ ((a ^ ca) & (b ^ cb))`, covering AND and OR in every polarity.
const POLARITIES: [(bool, bool, bool); 8] = [
    (false, false, false),
    (true, false, false),
    (false, true, false),
    (true, true, false),
    (false, false, true),
    (true, false, true),
    (false, true, true),
    (true, true, true),
];

fn identity_gl(compl: bool) -> GateList {
    GateList {
        n_leaves: 1,
        gates: vec![],
        root: GateList::leaf(0, compl),
    }
}

fn and2_gl(out_compl: bool) -> GateList {
    // Complement is folded into the leaf literals by the caller, so the gate
    // is a plain AND of leaf 0 and leaf 1.
    GateList {
        n_leaves: 2,
        gates: vec![(GateList::leaf(0, false), GateList::leaf(1, false))],
        root: 2 << 1 | out_compl as u32,
    }
}

/// Truth tables (over the cut leaves) of every node in the cone of `root`
/// above `leaves`, leaves included. Returns the table map and a topological
/// listing of the window's nodes.
fn window_tts(aig: &Aig, root: Var, leaves: &[Var]) -> (aig::hash::FastMap<Var, Tt>, Vec<Var>) {
    let nv = leaves.len();
    let mut tts = aig::hash::FastMap::default();
    let mut order = Vec::new();
    for (i, &l) in leaves.iter().enumerate() {
        tts.insert(l, Tt::var(nv, i));
        order.push(l);
    }
    let mut stack = vec![(root, false)];
    while let Some((v, expanded)) = stack.pop() {
        if tts.contains_key(&v) {
            continue;
        }
        let n = aig.node(v);
        debug_assert!(n.is_and(), "leaves must cover the cone");
        let (a, b) = (n.fanin0(), n.fanin1());
        if expanded {
            let ta = tts[&a.var()].clone();
            let tb = tts[&b.var()].clone();
            let ta = if a.is_compl() { !ta } else { ta };
            let tb = if b.is_compl() { !tb } else { tb };
            tts.insert(v, ta & tb);
            order.push(v);
        } else {
            stack.push((v, true));
            if !tts.contains_key(&a.var()) {
                stack.push((a.var(), false));
            }
            if !tts.contains_key(&b.var()) {
                stack.push((b.var(), false));
            }
        }
    }
    (tts, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::check::{exhaustive_equiv, sim_equiv};

    fn random_aig(seed: u64, n_pis: usize, n_gates: usize) -> Aig {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = Aig::new();
        let pis = g.add_pis(n_pis);
        let mut pool: Vec<Lit> = pis;
        for _ in 0..n_gates {
            let a = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
            let b = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
            let l = match rng.gen_range(0..4) {
                0 | 1 => g.and(a, b),
                2 => g.or(a, b),
                _ => g.xor(a, b),
            };
            pool.push(l);
        }
        let n = pool.len();
        g.add_po(pool[n - 1]);
        g.add_po(pool[n / 2]);
        g
    }

    #[test]
    fn preserves_function_small() {
        for seed in 0..8 {
            let g = random_aig(seed, 6, 50);
            let h = resub(&g, &ResubParams::default());
            assert!(exhaustive_equiv(&g, &h), "seed {seed}");
        }
    }

    #[test]
    fn preserves_function_larger() {
        for seed in 60..63 {
            let g = random_aig(seed, 20, 300);
            let h = resub(&g, &ResubParams::default());
            assert!(sim_equiv(&g, &h, 8, seed), "seed {seed}");
        }
    }

    #[test]
    fn finds_zero_resub() {
        // Two structurally different but equivalent cones; resub should
        // forward one to the other.
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        // xor built twice with different structure.
        let x1 = g.xor(a, b);
        let o = g.or(a, b);
        let na = g.and(a, b);
        let x2 = g.and(o, !na); // same function as x1
        let u1 = g.and(x1, c);
        let u2 = g.and(x2, !c);
        g.add_po(u1);
        g.add_po(u2);
        let before = g.num_ands();
        let h = resub(&g, &ResubParams::default());
        assert!(exhaustive_equiv(&g, &h));
        assert!(h.num_ands() < before, "{} !< {}", h.num_ands(), before);
    }

    #[test]
    fn does_not_grow() {
        for seed in 10..16 {
            let g = random_aig(seed, 8, 100);
            let h = resub(&g, &ResubParams::default());
            assert!(h.num_ands() <= g.num_ands(), "seed {seed}");
        }
    }
}
