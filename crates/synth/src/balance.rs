//! AND-tree balancing (`balance`).
//!
//! Collects maximal single-fanout AND trees ("super-gates") and rebuilds
//! each as a delay-minimal tree: operands are combined two-at-a-time,
//! always pairing the two with the lowest arrival level, exactly like ABC's
//! `balance` command. Structural hashing in the rebuilt graph recovers any
//! sharing the tree re-shaping exposes.

use aig::{Aig, Lit, Var};

/// Balances all AND trees, returning a functionally equivalent graph whose
/// depth is less than or equal to the input's on tree-dominated logic.
pub fn balance(aig: &Aig) -> Aig {
    // A node is *tree-interior* when it is an AND with exactly one fanout,
    // referenced non-complemented by another AND gate. Such nodes are
    // absorbed into their consumer's super-gate.
    let fanout = aig.fanout_counts();
    let mut interior = vec![false; aig.num_nodes()];
    for v in aig.iter_ands() {
        let n = aig.node(v);
        for f in n.fanins() {
            if !f.is_compl() && aig.node(f.var()).is_and() && fanout[f.var() as usize] == 1 {
                interior[f.var() as usize] = true;
            }
        }
    }
    // POs must keep their drivers addressable.
    for po in aig.pos() {
        interior[po.var() as usize] = false;
    }

    let mut new = Aig::with_capacity(aig.num_nodes());
    let mut map: Vec<Option<Lit>> = vec![None; aig.num_nodes()];
    map[0] = Some(Lit::FALSE);
    for &pi in aig.pis() {
        map[pi as usize] = Some(new.add_pi());
    }

    // New-graph levels, grown lazily as nodes are created.
    let mut levels = vec![0u32; new.num_nodes()];

    for v in aig.iter_ands() {
        if interior[v as usize] {
            continue; // built as part of its consumer's tree
        }
        // Collect the super-gate operands by expanding interior fanins.
        let mut operands: Vec<Lit> = Vec::new();
        collect_tree(aig, &interior, v, Lit::from_var(v, false), &mut operands);
        // Map operands into the new graph; all are non-interior roots
        // (or PIs) already processed.
        let mut mapped: Vec<(u32, Lit)> = operands
            .iter()
            .map(|&l| {
                let nl = map[l.var() as usize]
                    .expect("operand built")
                    .xor_compl(l.is_compl());
                (level_of(&levels, nl), nl)
            })
            .collect();
        // Repeatedly combine the two lowest-level operands.
        mapped.sort_by_key(|&(lv, _)| std::cmp::Reverse(lv));
        while mapped.len() > 1 {
            let (la, a) = mapped.pop().expect("len > 1");
            let (lb, b) = mapped.pop().expect("len > 1");
            let l = new.and(a, b);
            grow_levels(&mut levels, &new);
            let lvl = level_of(&levels, l).max(la.max(lb) + 1);
            set_level(&mut levels, l, lvl);
            // Insert back keeping descending order.
            let pos = mapped.partition_point(|&(x, _)| x > lvl);
            mapped.insert(pos, (lvl, l));
        }
        let result = mapped.pop().map(|(_, l)| l).unwrap_or(Lit::TRUE);
        map[v as usize] = Some(result);
    }

    for &po in aig.pos() {
        let l = map[po.var() as usize].expect("PO driver built");
        new.add_po(l.xor_compl(po.is_compl()));
    }
    new
}

fn collect_tree(aig: &Aig, interior: &[bool], root: Var, lit: Lit, out: &mut Vec<Lit>) {
    let mut stack = vec![lit];
    while let Some(l) = stack.pop() {
        let v = l.var();
        let expand = !l.is_compl() && aig.node(v).is_and() && (v == root || interior[v as usize]);
        if expand {
            let n = aig.node(v);
            stack.push(n.fanin0());
            stack.push(n.fanin1());
        } else {
            out.push(l);
        }
    }
}

fn grow_levels(levels: &mut Vec<u32>, new: &Aig) {
    while levels.len() < new.num_nodes() {
        // New nodes created by strashing reuse: compute level from fanins.
        let v = levels.len() as Var;
        let n = new.node(v);
        let lv = if n.is_and() {
            1 + levels[n.fanin0().var() as usize].max(levels[n.fanin1().var() as usize])
        } else {
            0
        };
        levels.push(lv);
    }
}

#[inline]
fn level_of(levels: &[u32], l: Lit) -> u32 {
    levels.get(l.var() as usize).copied().unwrap_or(0)
}

#[inline]
fn set_level(levels: &mut [u32], l: Lit, lv: u32) {
    let idx = l.var() as usize;
    if idx < levels.len() {
        levels[idx] = levels[idx].max(lv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::check::{exhaustive_equiv, sim_equiv};

    #[test]
    fn chain_becomes_logarithmic() {
        let mut g = Aig::new();
        let pis = g.add_pis(16);
        let mut acc = pis[0];
        for &p in &pis[1..] {
            acc = g.and(acc, p);
        }
        g.add_po(acc);
        assert_eq!(g.depth(), 15);
        let h = balance(&g);
        assert!(exhaustive_equiv(&g, &h));
        assert_eq!(h.depth(), 4, "16-input AND balances to depth log2(16)");
    }

    #[test]
    fn or_chain_balances_too() {
        let mut g = Aig::new();
        let pis = g.add_pis(8);
        let mut acc = pis[0];
        for &p in &pis[1..] {
            acc = g.or(acc, p);
        }
        g.add_po(acc);
        let h = balance(&g);
        assert!(exhaustive_equiv(&g, &h));
        // OR chain = AND chain of complements: also log depth.
        assert!(h.depth() <= 3 + 1, "got {}", h.depth());
    }

    #[test]
    fn shared_nodes_not_duplicated_wrongly() {
        let mut g = Aig::new();
        let pis = g.add_pis(4);
        let shared = g.and(pis[0], pis[1]);
        let t1 = g.and(shared, pis[2]);
        let t2 = g.and(shared, pis[3]);
        g.add_po(t1);
        g.add_po(t2);
        let h = balance(&g);
        assert!(exhaustive_equiv(&g, &h));
        assert!(h.num_ands() <= g.num_ands());
    }

    #[test]
    fn mixed_logic_equivalence_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        for _ in 0..10 {
            let mut g = Aig::new();
            let pis = g.add_pis(8);
            let mut pool: Vec<Lit> = pis.clone();
            for _ in 0..60 {
                let a = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
                let b = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
                let l = match rng.gen_range(0..3) {
                    0 => g.and(a, b),
                    1 => g.or(a, b),
                    _ => g.xor(a, b),
                };
                pool.push(l);
            }
            let n = pool.len();
            g.add_po(pool[n - 1]);
            g.add_po(pool[n - 2]);
            let h = balance(&g);
            assert!(exhaustive_equiv(&g, &h));
            assert!(sim_equiv(&g, &h, 4, 7));
        }
    }

    #[test]
    fn po_driver_preserved_when_interior() {
        // A node that would be tree-interior but drives a PO must survive.
        let mut g = Aig::new();
        let pis = g.add_pis(3);
        let t = g.and(pis[0], pis[1]);
        let u = g.and(t, pis[2]);
        g.add_po(t);
        g.add_po(u);
        let h = balance(&g);
        assert!(exhaustive_equiv(&g, &h));
    }

    #[test]
    fn constant_pos() {
        let mut g = Aig::new();
        let _ = g.add_pi();
        g.add_po(Lit::TRUE);
        let h = balance(&g);
        assert_eq!(h.eval(&[false]), vec![true]);
    }
}
