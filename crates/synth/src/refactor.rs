//! Large-cut refactoring (`refactor`).
//!
//! For each node, a reconvergence-driven cut of up to `max_leaves` inputs is
//! grown, the function of the node over the cut is extracted, and a fresh
//! implementation is synthesised by algebraic factoring / decomposition
//! ([`crate::factor::best_structure`]). The node is replaced when the new
//! structure is smaller than the logic it makes redundant — Brayton-style
//! re-factorisation as in ABC's `refactor`.

use crate::factor::best_structure;
use crate::plan::{rebuild, Choice};
use aig::cut::cut_function;
use aig::hash::FastSet;
use aig::mffc::Mffc;
use aig::{Aig, GateList, Lit, Var};

/// Parameters of the refactoring pass.
#[derive(Clone, Copy, Debug)]
pub struct RefactorParams {
    /// Maximum leaves of the reconvergence-driven cut (hard cap 12).
    pub max_leaves: usize,
    /// Accept zero-gain replacements.
    pub zero_gain: bool,
}

impl Default for RefactorParams {
    fn default() -> RefactorParams {
        RefactorParams {
            max_leaves: 10,
            zero_gain: false,
        }
    }
}

/// Refactors the graph, returning a functionally equivalent one.
///
/// # Panics
/// Panics if `params.max_leaves` is outside `2..=12`.
pub fn refactor(aig: &Aig, params: &RefactorParams) -> Aig {
    assert!(
        (2..=12).contains(&params.max_leaves),
        "max_leaves must be in 2..=12 (truth-table bound)"
    );
    let mut mffc = Mffc::new(aig);
    let fanout = aig.fanout_counts();
    let mut choices: Vec<Choice> = vec![Choice::Copy; aig.num_nodes()];

    for v in aig.iter_ands() {
        if fanout[v as usize] == 0 {
            continue;
        }
        let leaves = reconvergence_cut(aig, v, params.max_leaves);
        if leaves.len() < 2 {
            continue;
        }
        let cone = mffc.cone_collect(aig, v, &leaves);
        if cone.len() < 2 && !params.zero_gain {
            continue; // nothing worth saving here
        }
        let cone_set: FastSet<Var> = cone.iter().copied().collect();
        let f = cut_function(aig, v, &leaves);
        let gl = best_structure(&f);
        let leaf_lits: Vec<Lit> = leaves.iter().map(|&l| Lit::from_var(l, false)).collect();
        let cost = dry_run_cost(aig, &leaf_lits, &gl, &cone_set);
        let gain = cone.len() as i64 - cost as i64;
        let threshold = if params.zero_gain { 0 } else { 1 };
        if gain >= threshold {
            choices[v as usize] = Choice::Structure {
                leaves: leaf_lits,
                gl,
            };
        }
    }

    rebuild(aig, &choices)
}

/// Grows a reconvergence-driven cut of `root` with at most `max_leaves`
/// leaves: starting from `{root}`, repeatedly expands the leaf whose fanins
/// add the fewest new leaves (preferring reconvergent expansions).
pub(crate) fn reconvergence_cut(aig: &Aig, root: Var, max_leaves: usize) -> Vec<Var> {
    let mut leaves: Vec<Var> = vec![root];
    loop {
        let mut best: Option<(i32, usize)> = None; // (cost, index in leaves)
        for (i, &l) in leaves.iter().enumerate() {
            let n = aig.node(l);
            if !n.is_and() {
                continue;
            }
            let f0 = n.fanin0().var();
            let f1 = n.fanin1().var();
            let cost =
                (!leaves.contains(&f0)) as i32 + (!leaves.contains(&f1) && f1 != f0) as i32 - 1;
            if leaves.len() as i32 + cost > max_leaves as i32 {
                continue;
            }
            if best.is_none() || cost < best.expect("some").0 {
                best = Some((cost, i));
            }
        }
        let Some((_, i)) = best else { break };
        let n = *aig.node(leaves[i]);
        leaves.swap_remove(i);
        for f in n.fanins() {
            if !leaves.contains(&f.var()) {
                leaves.push(f.var());
            }
        }
        if leaves.len() >= max_leaves {
            break;
        }
    }
    leaves.sort_unstable();
    leaves.dedup();
    leaves
}

/// Same dry-run cost model as rewriting (kept local to avoid a public API
/// commitment): counts new gates, crediting existing ones outside the cone.
fn dry_run_cost(aig: &Aig, leaves: &[Lit], gl: &GateList, excluded: &FastSet<Var>) -> usize {
    let mut sigs: Vec<Option<Lit>> = leaves.iter().map(|&l| Some(l)).collect();
    let decode = |sigs: &[Option<Lit>], s: u32| -> Option<Lit> {
        match s {
            GateList::FALSE => Some(Lit::FALSE),
            GateList::TRUE => Some(Lit::TRUE),
            _ => sigs[(s >> 1) as usize].map(|l| l.xor_compl(s & 1 != 0)),
        }
    };
    let mut cost = 0usize;
    for &(a, b) in &gl.gates {
        let out = match (decode(&sigs, a), decode(&sigs, b)) {
            (Some(x), Some(y)) => match aig.find_and(x, y) {
                Some(l) if l.is_const() || !excluded.contains(&l.var()) => Some(l),
                _ => {
                    cost += 1;
                    None
                }
            },
            _ => {
                cost += 1;
                None
            }
        };
        sigs.push(out);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::check::{exhaustive_equiv, sim_equiv};

    fn random_aig(seed: u64, n_pis: usize, n_gates: usize) -> Aig {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = Aig::new();
        let pis = g.add_pis(n_pis);
        let mut pool: Vec<Lit> = pis;
        for _ in 0..n_gates {
            let a = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
            let b = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
            let l = match rng.gen_range(0..4) {
                0 | 1 => g.and(a, b),
                2 => g.or(a, b),
                _ => g.xor(a, b),
            };
            pool.push(l);
        }
        let n = pool.len();
        g.add_po(pool[n - 1]);
        g
    }

    #[test]
    fn reconv_cut_is_a_cut() {
        let g = random_aig(1, 6, 60);
        for v in g.iter_ands() {
            let leaves = reconvergence_cut(&g, v, 8);
            assert!(leaves.len() <= 8);
            // Verify it is a cut: evaluating the cone must never escape the
            // leaves (cut_function panics otherwise).
            let _ = cut_function(&g, v, &leaves);
        }
    }

    #[test]
    fn preserves_function_small() {
        for seed in 0..8 {
            let g = random_aig(seed, 6, 50);
            let h = refactor(&g, &RefactorParams::default());
            assert!(exhaustive_equiv(&g, &h), "seed {seed}");
        }
    }

    #[test]
    fn preserves_function_larger() {
        for seed in 50..53 {
            let g = random_aig(seed, 20, 300);
            let h = refactor(&g, &RefactorParams::default());
            assert!(sim_equiv(&g, &h, 8, seed), "seed {seed}");
        }
    }

    #[test]
    fn collapses_redundant_cones() {
        // (a & b) | (a & !b) == a: a refactor over a 2-leaf cut finds it.
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let t0 = g.and(a, b);
        let t1 = g.and(a, !b);
        let o = g.or(t0, t1);
        let extra = g.add_pi();
        let out = g.and(o, extra);
        g.add_po(out);
        let h = refactor(&g, &RefactorParams::default());
        assert!(exhaustive_equiv(&g, &h));
        assert!(
            h.num_ands() < g.num_ands(),
            "{} !< {}",
            h.num_ands(),
            g.num_ands()
        );
    }

    #[test]
    fn max_leaves_out_of_range_panics() {
        let g = random_aig(3, 4, 10);
        let r = std::panic::catch_unwind(|| {
            refactor(
                &g,
                &RefactorParams {
                    max_leaves: 20,
                    zero_gain: false,
                },
            )
        });
        assert!(r.is_err());
    }
}
