//! A miniature strashed AND-graph builder producing [`GateList`]s.
//!
//! Resynthesis engines (NPN library, refactoring, DSD) synthesise candidate
//! implementations *before* touching the real graph. [`StructBuilder`]
//! accumulates such a candidate as a [`GateList`]: AND gates over abstract
//! leaves with constant folding and local structural hashing, mirroring the
//! semantics of [`aig::Aig::and`] exactly so that gate counts predicted here
//! match gates created at instantiation time.

use aig::hash::FastMap;
use aig::GateList;

/// Signal within a structure under construction (same encoding as
/// [`GateList`]: `2*node + compl`, constants via sentinels).
pub type Sig = u32;

/// Constant-false signal.
pub const SIG_FALSE: Sig = GateList::FALSE;
/// Constant-true signal.
pub const SIG_TRUE: Sig = GateList::TRUE;

/// Complements a signal (constants included).
#[inline]
pub fn sig_not(s: Sig) -> Sig {
    match s {
        SIG_FALSE => SIG_TRUE,
        SIG_TRUE => SIG_FALSE,
        _ => s ^ 1,
    }
}

/// Builder for small AND structures over `n_leaves` abstract leaves.
#[derive(Clone, Debug)]
pub struct StructBuilder {
    n_leaves: usize,
    gates: Vec<(Sig, Sig)>,
    strash: FastMap<(Sig, Sig), Sig>,
}

impl StructBuilder {
    /// A builder over `n_leaves` leaves.
    pub fn new(n_leaves: usize) -> StructBuilder {
        StructBuilder {
            n_leaves,
            gates: Vec::new(),
            strash: FastMap::default(),
        }
    }

    /// Signal of leaf `i`.
    ///
    /// # Panics
    /// Panics if `i >= n_leaves`.
    pub fn leaf(&self, i: usize) -> Sig {
        assert!(i < self.n_leaves, "leaf index out of range");
        GateList::leaf(i, false)
    }

    /// Number of AND gates so far.
    pub fn size(&self) -> usize {
        self.gates.len()
    }

    /// The AND of two signals, with the same folding rules as the real AIG.
    pub fn and(&mut self, a: Sig, b: Sig) -> Sig {
        if a == SIG_FALSE || b == SIG_FALSE || a == sig_not(b) {
            return SIG_FALSE;
        }
        if a == SIG_TRUE {
            return b;
        }
        if b == SIG_TRUE || a == b {
            return a;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&s) = self.strash.get(&key) {
            return s;
        }
        let idx = self.n_leaves + self.gates.len();
        self.gates.push(key);
        let s = (idx as u32) << 1;
        self.strash.insert(key, s);
        s
    }

    /// The OR of two signals.
    pub fn or(&mut self, a: Sig, b: Sig) -> Sig {
        sig_not(self.and(sig_not(a), sig_not(b)))
    }

    /// The XOR of two signals (two ANDs plus an OR).
    pub fn xor(&mut self, a: Sig, b: Sig) -> Sig {
        let t0 = self.and(a, sig_not(b));
        let t1 = self.and(sig_not(a), b);
        self.or(t0, t1)
    }

    /// The multiplexer `sel ? t : e`.
    pub fn mux(&mut self, sel: Sig, t: Sig, e: Sig) -> Sig {
        if t == e {
            return t;
        }
        if t == sig_not(e) {
            return self.xor(sel, e);
        }
        let a = self.and(sel, t);
        let b = self.and(sig_not(sel), e);
        self.or(a, b)
    }

    /// Finalises the structure with `root` as its output.
    pub fn finish(self, root: Sig) -> GateList {
        GateList {
            n_leaves: self.n_leaves,
            gates: self.gates,
            root,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::Aig;

    /// Evaluates a gatelist on boolean leaves (reference semantics).
    pub(crate) fn eval_gatelist(gl: &GateList, leaves: &[bool]) -> bool {
        let mut vals: Vec<bool> = leaves.to_vec();
        let dec = |vals: &[bool], s: Sig| -> bool {
            match s {
                SIG_FALSE => false,
                SIG_TRUE => true,
                _ => vals[(s >> 1) as usize] ^ (s & 1 != 0),
            }
        };
        for &(a, b) in &gl.gates {
            let v = dec(&vals, a) & dec(&vals, b);
            vals.push(v);
        }
        dec(&vals, gl.root)
    }

    #[test]
    fn folding_matches_aig() {
        let mut b = StructBuilder::new(2);
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        assert_eq!(b.and(l0, SIG_FALSE), SIG_FALSE);
        assert_eq!(b.and(l0, SIG_TRUE), l0);
        assert_eq!(b.and(l0, l0), l0);
        assert_eq!(b.and(l0, sig_not(l0)), SIG_FALSE);
        let x = b.and(l0, l1);
        let y = b.and(l1, l0);
        assert_eq!(x, y);
        assert_eq!(b.size(), 1);
    }

    #[test]
    fn xor_structure_evaluates() {
        let mut b = StructBuilder::new(2);
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        let x = b.xor(l0, l1);
        let gl = b.finish(x);
        assert_eq!(gl.size(), 3);
        for (a, bb) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(eval_gatelist(&gl, &[a, bb]), a ^ bb);
        }
    }

    #[test]
    fn instantiation_matches_eval() {
        let mut b = StructBuilder::new(3);
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        let l2 = b.leaf(2);
        let m = b.mux(l0, l1, l2);
        let gl = b.finish(sig_not(m));
        let mut g = Aig::new();
        let pis = g.add_pis(3);
        let out = g.build_gatelist(&pis, &gl);
        g.add_po(out);
        for p in 0..8u32 {
            let ins: Vec<bool> = (0..3).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(g.eval(&ins)[0], eval_gatelist(&gl, &ins), "p={p}");
        }
    }

    #[test]
    fn mux_special_cases() {
        let mut b = StructBuilder::new(2);
        let s = b.leaf(0);
        let t = b.leaf(1);
        assert_eq!(b.mux(s, t, t), t);
        let x = b.mux(s, sig_not(t), t);
        let gl_size = b.size();
        assert!(gl_size <= 3, "t != e complement becomes xor");
        // Check semantics.
        let gl = b.finish(x);
        for (sv, tv) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(eval_gatelist(&gl, &[sv, tv]), sv ^ tv);
        }
    }
}
