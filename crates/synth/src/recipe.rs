//! Synthesis operations and recipes (sequences of operations).
//!
//! The paper's RL agent picks from the discrete action set
//! `{rewrite, refactor, balance, resub, end}` (Sec. III-B3); this module
//! provides the circuit-side of that action space, plus canned recipes used
//! by the baselines (e.g. the size-oriented script standing in for the
//! Eén–Mishchenko–Sörensson preprocessing of the *Comp.* pipeline).

use crate::{balance, refactor, resub, rewrite, RefactorParams, ResubParams, RewriteParams};
use aig::Aig;
use std::fmt;
use std::str::FromStr;

/// One logic-synthesis operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SynthOp {
    /// Delay-oriented AND-tree balancing.
    Balance,
    /// DAG-aware 4-cut NPN rewriting.
    Rewrite,
    /// Rewriting accepting zero-gain moves (perturbation).
    RewriteZ,
    /// MFFC refactoring via algebraic factoring.
    Refactor,
    /// Window-based resubstitution.
    Resub,
}

impl SynthOp {
    /// All operations, in a stable order (the RL action indexing).
    pub const ALL: [SynthOp; 5] = [
        SynthOp::Balance,
        SynthOp::Rewrite,
        SynthOp::RewriteZ,
        SynthOp::Refactor,
        SynthOp::Resub,
    ];

    /// Short ABC-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            SynthOp::Balance => "b",
            SynthOp::Rewrite => "rw",
            SynthOp::RewriteZ => "rwz",
            SynthOp::Refactor => "rf",
            SynthOp::Resub => "rs",
        }
    }
}

impl fmt::Display for SynthOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error parsing a [`SynthOp`] or [`Recipe`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRecipeError(String);

impl fmt::Display for ParseRecipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown synthesis operation '{}'", self.0)
    }
}

impl std::error::Error for ParseRecipeError {}

impl FromStr for SynthOp {
    type Err = ParseRecipeError;
    fn from_str(s: &str) -> Result<SynthOp, ParseRecipeError> {
        match s.trim() {
            "b" | "balance" => Ok(SynthOp::Balance),
            "rw" | "rewrite" => Ok(SynthOp::Rewrite),
            "rwz" | "rewrite-z" => Ok(SynthOp::RewriteZ),
            "rf" | "refactor" => Ok(SynthOp::Refactor),
            "rs" | "resub" => Ok(SynthOp::Resub),
            other => Err(ParseRecipeError(other.to_string())),
        }
    }
}

/// Applies one operation, returning the transformed graph.
pub fn apply_op(aig: &Aig, op: SynthOp) -> Aig {
    match op {
        SynthOp::Balance => balance(aig),
        SynthOp::Rewrite => rewrite(aig, &RewriteParams::default()),
        SynthOp::RewriteZ => rewrite(
            aig,
            &RewriteParams {
                zero_gain: true,
                max_cuts: 8,
            },
        ),
        SynthOp::Refactor => refactor(aig, &RefactorParams::default()),
        SynthOp::Resub => resub(aig, &ResubParams::default()),
    }
}

/// Applies a sequence of operations left to right.
pub fn apply_recipe(aig: &Aig, ops: &[SynthOp]) -> Aig {
    let mut g = aig.clone();
    for &op in ops {
        g = apply_op(&g, op);
    }
    g
}

/// A named sequence of synthesis operations.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Recipe {
    ops: Vec<SynthOp>,
}

impl Recipe {
    /// An empty recipe (identity transformation).
    pub fn new() -> Recipe {
        Recipe::default()
    }

    /// Builds a recipe from operations.
    pub fn from_ops(ops: Vec<SynthOp>) -> Recipe {
        Recipe { ops }
    }

    /// The classic size-oriented script (`b; rw; rf; b; rw; b`) — our
    /// stand-in for the minimisation pass of the *Comp.* baseline
    /// (Eén–Mishchenko–Sörensson, SAT 2007).
    pub fn size_script() -> Recipe {
        use SynthOp::*;
        Recipe {
            ops: vec![Balance, Rewrite, Refactor, Balance, Rewrite, Balance],
        }
    }

    /// A `resyn2`-flavoured script with zero-gain perturbation.
    pub fn resyn2() -> Recipe {
        use SynthOp::*;
        Recipe {
            ops: vec![
                Balance, Rewrite, Refactor, Balance, Rewrite, RewriteZ, Balance, Refactor,
                RewriteZ, Balance,
            ],
        }
    }

    /// The normalisation prelude the framework applies to unify input
    /// distributions before the RL episode (Sec. III-A).
    pub fn normalize() -> Recipe {
        use SynthOp::*;
        Recipe {
            ops: vec![Balance, Rewrite],
        }
    }

    /// The operations of the recipe.
    pub fn ops(&self) -> &[SynthOp] {
        &self.ops
    }

    /// Appends one operation.
    pub fn push(&mut self, op: SynthOp) {
        self.ops.push(op);
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the recipe has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Runs the recipe on a graph.
    pub fn apply(&self, aig: &Aig) -> Aig {
        apply_recipe(aig, &self.ops)
    }
}

impl fmt::Display for Recipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<&str> = self.ops.iter().map(|o| o.mnemonic()).collect();
        f.write_str(&parts.join(";"))
    }
}

impl FromStr for Recipe {
    type Err = ParseRecipeError;
    fn from_str(s: &str) -> Result<Recipe, ParseRecipeError> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Recipe::new());
        }
        let ops = s
            .split([';', ','])
            .map(|tok| tok.parse::<SynthOp>())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Recipe { ops })
    }
}

impl FromIterator<SynthOp> for Recipe {
    fn from_iter<T: IntoIterator<Item = SynthOp>>(iter: T) -> Recipe {
        Recipe {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::check::sim_equiv;
    use aig::Lit;

    fn random_aig(seed: u64) -> Aig {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = Aig::new();
        let pis = g.add_pis(10);
        let mut pool: Vec<Lit> = pis;
        for _ in 0..150 {
            let a = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
            let b = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
            let l = match rng.gen_range(0..4) {
                0 | 1 => g.and(a, b),
                2 => g.or(a, b),
                _ => g.xor(a, b),
            };
            pool.push(l);
        }
        let n = pool.len();
        g.add_po(pool[n - 1]);
        g
    }

    #[test]
    fn every_op_preserves_function() {
        let g = random_aig(11);
        for op in SynthOp::ALL {
            let h = apply_op(&g, op);
            assert!(sim_equiv(&g, &h, 8, 17), "op {op}");
        }
    }

    #[test]
    fn size_script_shrinks_random_logic() {
        let g = random_aig(12);
        let h = Recipe::size_script().apply(&g);
        assert!(sim_equiv(&g, &h, 8, 18));
        assert!(
            h.num_ands() <= g.num_ands(),
            "{} -> {}",
            g.num_ands(),
            h.num_ands()
        );
    }

    #[test]
    fn recipe_parse_roundtrip() {
        let r: Recipe = "b;rw;rf;rs;rwz".parse().unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(r.to_string(), "b;rw;rf;rs;rwz");
        assert_eq!(r.to_string().parse::<Recipe>().unwrap(), r);
        assert!("b;xx".parse::<Recipe>().is_err());
        assert_eq!("".parse::<Recipe>().unwrap(), Recipe::new());
    }

    #[test]
    fn mnemonics_unique() {
        let mut set = std::collections::HashSet::new();
        for op in SynthOp::ALL {
            assert!(set.insert(op.mnemonic()));
        }
    }
}
