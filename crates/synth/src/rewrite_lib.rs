//! The NPN-class structure library used by DAG-aware rewriting.
//!
//! ABC ships a pre-computed table of optimal 4-input structures; we build
//! ours lazily: the first time a canonical function is requested, a compact
//! structure is synthesised with [`crate::factor::best_structure`] and
//! cached process-wide. All 222 classes cost a few milliseconds total.

use aig::hash::FastMap;
use aig::{GateList, Tt};
use std::sync::{Mutex, OnceLock};

/// Returns a structure implementing the (NPN-canonical) 4-variable function
/// `canon`. Results are memoised globally.
pub fn npn_structure(canon: u16) -> GateList {
    static CACHE: OnceLock<Mutex<FastMap<u16, GateList>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(FastMap::default()));
    {
        let guard = cache.lock().unwrap();
        if let Some(gl) = guard.get(&canon) {
            return gl.clone();
        }
    }
    let gl = crate::factor::best_structure(&Tt::from_u16(canon));
    cache.lock().unwrap().insert(canon, gl.clone());
    gl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsd::gatelist_tt;
    use aig::npn::npn_class_representatives;

    #[test]
    fn every_class_synthesises_correctly() {
        for canon in npn_class_representatives() {
            let gl = npn_structure(canon);
            assert_eq!(gatelist_tt(&gl).to_u16(), canon, "class {canon:#06x}");
        }
    }

    #[test]
    fn structures_are_reasonably_small() {
        // The exact optimum for the worst 4-input NPN class is 9 AND gates;
        // our heuristic generators stay within 2x of that, which is enough
        // for rewriting (gains are measured, never assumed).
        let max = npn_class_representatives()
            .into_iter()
            .map(|c| npn_structure(c).size())
            .max()
            .unwrap();
        assert!(max <= 18, "largest class structure has {max} gates");
    }

    #[test]
    fn cache_returns_identical_structure() {
        let a = npn_structure(0x6996); // xor4 class canon or similar
        let b = npn_structure(0x6996);
        assert_eq!(a, b);
    }
}
