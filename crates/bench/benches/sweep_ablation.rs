//! Criterion bench for the **SAT-sweeping extension ablation**: Baseline,
//! *Ours*, and *Ours + fraig* end-to-end on equivalence-heavy instances —
//! the workload class sweeping is built for. Not a paper figure; this is
//! the ablation for the extension arm documented in DESIGN.md §5.

use bench::experiments::{solver_preset, test_split, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use csat_preproc::{BaselinePipeline, FrameworkPipeline, Pipeline};
use rl::RecipePolicy;
use sat::{solve_cnf, Budget};
use sweep::FraigParams;
use synth::Recipe;

fn bench_sweep(c: &mut Criterion) {
    let scale = Scale::quick();
    let instances = test_split(&scale);
    // Keep only UNSAT-expected (equivalence) instances: the sweeping
    // success case. SAT instances pass through mostly unchanged.
    let slice: Vec<_> = instances
        .into_iter()
        .filter(|i| i.expected == Some(false))
        .take(3)
        .collect();
    assert!(
        !slice.is_empty(),
        "test split must contain equivalence miters"
    );
    let solver = solver_preset("kissat");
    let budget = Budget::conflicts(scale.budget_conflicts);

    let policy = RecipePolicy::Fixed(Recipe::size_script());
    let arms: Vec<(&str, Box<dyn Pipeline>)> = vec![
        ("baseline", Box::new(BaselinePipeline)),
        ("ours", Box::new(FrameworkPipeline::ours(policy.clone()))),
        (
            "ours_fraig",
            Box::new(FrameworkPipeline::ours(policy).with_sweep(FraigParams::default())),
        ),
    ];

    let mut group = c.benchmark_group("sweep_ablation");
    group.sample_size(10);
    for (name, p) in &arms {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut decisions = 0u64;
                for inst in &slice {
                    let pre = p.preprocess(&inst.aig);
                    let (_, stats) = solve_cnf(&pre.cnf, solver.clone(), budget.clone());
                    decisions += stats.decisions;
                }
                decisions
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
