//! Criterion bench for **Fig. 5**: the ablation arms — full framework
//! (*Ours*), random recipes (*w/o RL*), conventional mapping cost
//! (*C. Mapper*) — end-to-end on a fixed slice of the test set.

use bench::experiments::{solver_preset, test_split, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use csat_preproc::{FrameworkPipeline, Pipeline};
use rl::RecipePolicy;
use sat::{solve_cnf, Budget};
use synth::Recipe;

fn bench_fig5(c: &mut Criterion) {
    let scale = Scale::quick();
    let instances = test_split(&scale);
    let slice: Vec<_> = instances.into_iter().take(4).collect();
    let solver = solver_preset("kissat");
    let budget = Budget::conflicts(scale.budget_conflicts);

    let policy = RecipePolicy::Fixed(Recipe::size_script());
    let arms: Vec<(&str, FrameworkPipeline)> = vec![
        ("ours", FrameworkPipeline::ours(policy.clone())),
        ("without_rl", FrameworkPipeline::without_rl(7, 10)),
        (
            "conventional_mapper",
            FrameworkPipeline::conventional_mapper(policy),
        ),
    ];

    let mut group = c.benchmark_group("fig5_ablation");
    group.sample_size(10);
    for (name, p) in &arms {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut decisions = 0u64;
                for inst in &slice {
                    let pre = p.preprocess(&inst.aig);
                    let (_, stats) = solve_cnf(&pre.cnf, solver.clone(), budget.clone());
                    decisions += stats.decisions;
                }
                decisions
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
