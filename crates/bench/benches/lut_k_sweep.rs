//! Criterion bench for the **LUT-size (k) sweep** — an ablation of the
//! paper's choice of 4-input LUTs (Sec. III-C enumerates all 4-LUT costs).
//! Maps the same instances with k ∈ {3, 4, 5, 6} under the branching cost
//! and measures end-to-end decisions, exposing the coarseness/visibility
//! trade-off: larger LUTs hide more internal logic but price functions
//! more coarsely.

use bench::experiments::{solver_preset, test_split, Scale};
use cnf::lut_to_cnf_sat_instance;
use criterion::{criterion_group, criterion_main, Criterion};
use mapper::{map_luts, BranchingCost, MapParams};
use sat::solve_cnf;

fn bench_lut_k(c: &mut Criterion) {
    let scale = Scale::quick();
    let instances = test_split(&scale);
    let slice: Vec<_> = instances.into_iter().take(3).collect();
    let solver = solver_preset("kissat");
    let budget = scale.budget();

    let mut group = c.benchmark_group("lut_k_sweep");
    group.sample_size(10);
    for k in [3usize, 4, 5, 6] {
        let params = MapParams {
            k,
            ..MapParams::default()
        };
        group.bench_function(format!("k{k}"), |b| {
            b.iter(|| {
                let mut decisions = 0u64;
                for inst in &slice {
                    let net = map_luts(&inst.aig, &params, &BranchingCost::new());
                    let (f, _) = lut_to_cnf_sat_instance(&net);
                    let (_, stats) = solve_cnf(&f, solver.clone(), budget.clone());
                    decisions += stats.decisions;
                }
                decisions
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lut_k);
criterion_main!(benches);
