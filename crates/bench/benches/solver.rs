//! Solver micro-benches: the two presets on fixed formula families
//! (pigeonhole, random 3-SAT, LEC miter) — sanity instrumentation for the
//! substrate that every experiment rests on.

use cnf::{Cnf, CnfLit};
use criterion::{criterion_group, criterion_main, Criterion};
use csat_preproc::{BaselinePipeline, Pipeline};
use rand::{Rng, SeedableRng};
use sat::{solve_cnf, Budget, SolverConfig};
use workloads::datapath::{carry_lookahead_adder, ripple_carry_adder};
use workloads::lec::miter;

/// Pigeonhole principle PHP(n+1, n) — canonical UNSAT stressor.
fn php(holes: u32) -> Cnf {
    let pigeons = holes + 1;
    let var = |p: u32, h: u32| p * holes + h + 1;
    let mut f = Cnf::new();
    for p in 0..pigeons {
        f.add_clause((0..holes).map(|h| CnfLit::pos(var(p, h))).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                f.add_clause(vec![CnfLit::neg(var(p1, h)), CnfLit::neg(var(p2, h))]);
            }
        }
    }
    f
}

fn random_3sat(n: u32, ratio: f64, seed: u64) -> Cnf {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut f = Cnf::new();
    f.ensure_vars(n);
    for _ in 0..(n as f64 * ratio) as usize {
        let mut clause = Vec::new();
        while clause.len() < 3 {
            let v = rng.gen_range(1..=n);
            if clause.iter().all(|l: &CnfLit| l.var() != v) {
                clause.push(CnfLit::new(v, rng.gen()));
            }
        }
        f.add_clause(clause);
    }
    f
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);

    let formulas: Vec<(&str, Cnf)> = vec![
        ("php7", php(7)),
        ("random3sat_120", random_3sat(120, 4.2, 3)),
        ("lec_miter_adder10", {
            let a = ripple_carry_adder(10);
            let b = carry_lookahead_adder(10);
            BaselinePipeline.preprocess(&miter(&a.aig, &b.aig)).cnf
        }),
    ];
    for (name, f) in &formulas {
        for preset in ["kissat", "cadical"] {
            let cfg = if preset == "kissat" {
                SolverConfig::kissat_like()
            } else {
                SolverConfig::cadical_like()
            };
            group.bench_function(format!("{name}_{preset}"), |b| {
                b.iter(|| solve_cnf(f, cfg.clone(), Budget::conflicts(2_000_000)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
