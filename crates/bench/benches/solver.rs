//! Solver micro-benches: the two presets on fixed formula families
//! (pigeonhole, random 3-SAT, LEC miter) — sanity instrumentation for the
//! substrate that every experiment rests on.

use cnf::Cnf;
use criterion::{criterion_group, criterion_main, Criterion};
use csat_preproc::{BaselinePipeline, Pipeline};
use sat::{solve_cnf, Budget, SolverConfig};
use workloads::cnf_gen::{pigeonhole, random_3sat};
use workloads::datapath::{carry_lookahead_adder, ripple_carry_adder};
use workloads::lec::miter;

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);

    let formulas: Vec<(&str, Cnf)> = vec![
        ("php7", pigeonhole(7)),
        ("random3sat_120", random_3sat(120, 4.2, 3)),
        ("lec_miter_adder10", {
            let a = ripple_carry_adder(10);
            let b = carry_lookahead_adder(10);
            BaselinePipeline.preprocess(&miter(&a.aig, &b.aig)).cnf
        }),
    ];
    for (name, f) in &formulas {
        for preset in ["kissat", "cadical"] {
            let cfg = if preset == "kissat" {
                SolverConfig::kissat_like()
            } else {
                SolverConfig::cadical_like()
            };
            group.bench_function(format!("{name}_{preset}"), |b| {
                b.iter(|| solve_cnf(f, cfg.clone(), Budget::conflicts(2_000_000)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
