//! Criterion bench for **Fig. 4(a)**: end-to-end runtime (preprocess +
//! solve) of the three pipelines under the Kissat-like preset on a fixed
//! slice of the test set. The benchmark's relative ordering is the figure's
//! claim: Ours < Comp. < Baseline.

use bench::experiments::{solver_preset, test_split, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use csat_preproc::{BaselinePipeline, CompPipeline, FrameworkPipeline, Pipeline};
use rl::RecipePolicy;
use sat::{solve_cnf, Budget};
use synth::Recipe;

fn bench_fig4(c: &mut Criterion) {
    let scale = Scale::quick();
    let instances = test_split(&scale);
    let slice: Vec<_> = instances.into_iter().take(4).collect();
    let solver = solver_preset("kissat");
    let budget = Budget::conflicts(scale.budget_conflicts);

    let pipelines: Vec<(&str, Box<dyn Pipeline>)> = vec![
        ("baseline", Box::new(BaselinePipeline)),
        ("comp", Box::new(CompPipeline::default())),
        (
            "ours",
            Box::new(FrameworkPipeline::ours(RecipePolicy::Fixed(
                Recipe::size_script(),
            ))),
        ),
    ];

    let mut group = c.benchmark_group("fig4_kissat");
    group.sample_size(10);
    for (name, p) in &pipelines {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut decisions = 0u64;
                for inst in &slice {
                    let pre = p.preprocess(&inst.aig);
                    let (_, stats) = solve_cnf(&pre.cnf, solver.clone(), budget.clone());
                    decisions += stats.decisions;
                }
                decisions
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
