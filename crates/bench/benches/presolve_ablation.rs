//! Criterion bench for the **CNF-presolve ablation**: the paper "keeps the
//! default CNF-based preprocessing" of Kissat/CaDiCaL; this bench measures
//! what our SatELite-style presolve (BVE + subsumption) contributes on top
//! of the circuit-level pipelines, confirming the two are complementary
//! (footnote 1 of the paper).

use bench::experiments::{solver_preset, test_split, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use csat_preproc::{BaselinePipeline, FrameworkPipeline, Pipeline};
use rl::RecipePolicy;
use sat::presolve::{solve_cnf_presolved, PresolveConfig};
use sat::solve_cnf;
use synth::Recipe;

fn bench_presolve(c: &mut Criterion) {
    let scale = Scale::quick();
    let instances = test_split(&scale);
    let slice: Vec<_> = instances.into_iter().take(3).collect();
    let solver = solver_preset("cadical");
    let budget = scale.budget();

    let pipelines: Vec<(&str, Box<dyn Pipeline>)> = vec![
        ("baseline", Box::new(BaselinePipeline)),
        (
            "ours",
            Box::new(FrameworkPipeline::ours(RecipePolicy::Fixed(
                Recipe::size_script(),
            ))),
        ),
    ];

    let mut group = c.benchmark_group("presolve_ablation");
    group.sample_size(10);
    for (pname, p) in &pipelines {
        // Preprocess once; the ablation varies only the CNF-level stage.
        let cnfs: Vec<_> = slice.iter().map(|i| p.preprocess(&i.aig).cnf).collect();
        group.bench_function(format!("{pname}/plain"), |b| {
            b.iter(|| {
                let mut decisions = 0u64;
                for f in &cnfs {
                    let (_, stats) = solve_cnf(f, solver.clone(), budget.clone());
                    decisions += stats.decisions;
                }
                decisions
            })
        });
        group.bench_function(format!("{pname}/presolved"), |b| {
            b.iter(|| {
                let mut decisions = 0u64;
                for f in &cnfs {
                    let (_, stats) = solve_cnf_presolved(
                        f,
                        solver.clone(),
                        budget.clone(),
                        &PresolveConfig::default(),
                    );
                    decisions += stats.decisions;
                }
                decisions
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_presolve);
criterion_main!(benches);
