//! Ablation benches around the cost-customised mapper (DESIGN.md §5):
//!
//! * mapping cost model (branching vs. area) on XOR-heavy logic,
//! * LUT size sweep k ∈ {3,4,5,6} under the branching cost,
//! * CNF encoding comparison at fixed mapping (Tseitin vs. LUT-ISOP).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csat_preproc::{BaselinePipeline, Pipeline};
use mapper::{map_luts, AreaCost, BranchingCost, MapParams};
use sat::{solve_cnf, Budget, SolverConfig};
use workloads::datapath::{array_multiplier, column_multiplier, parity, ripple_carry_adder};
use workloads::lec::miter;

fn xor_heavy_instance() -> aig::Aig {
    // Parity-vs-parity restructure keeps XOR density maximal.
    let a = parity(16);
    let b = ripple_carry_adder(8);
    // XOR-rich adder miter.
    let _ = a;
    miter(&b.aig, &workloads::lec::restructure(&b.aig, 9))
}

fn bench_cost_models(c: &mut Criterion) {
    let inst = xor_heavy_instance();
    let mut group = c.benchmark_group("mapper_cost_model");
    group.sample_size(10);
    group.bench_function("map_area", |b| {
        b.iter(|| map_luts(&inst, &MapParams::default(), &AreaCost))
    });
    group.bench_function("map_branching", |b| {
        b.iter(|| map_luts(&inst, &MapParams::default(), &BranchingCost::new()))
    });
    // Downstream effect: solve time of the two encodings.
    let solver = SolverConfig::kissat_like();
    for (name, net) in [
        (
            "solve_after_area",
            map_luts(&inst, &MapParams::default(), &AreaCost),
        ),
        (
            "solve_after_branching",
            map_luts(&inst, &MapParams::default(), &BranchingCost::new()),
        ),
    ] {
        let (cnf, _) = cnf::lut_to_cnf_sat_instance(&net);
        group.bench_function(name, |b| {
            b.iter(|| solve_cnf(&cnf, solver.clone(), Budget::conflicts(50_000)))
        });
    }
    group.finish();
}

fn bench_k_sweep(c: &mut Criterion) {
    let m = miter(&array_multiplier(4).aig, &column_multiplier(4).aig);
    let solver = SolverConfig::kissat_like();
    let mut group = c.benchmark_group("mapper_k_sweep");
    group.sample_size(10);
    for k in [3usize, 4, 5, 6] {
        let net = map_luts(
            &m,
            &MapParams {
                k,
                max_cuts: 8,
                rounds: 2,
                ..MapParams::default()
            },
            &BranchingCost::new(),
        );
        let (cnf, _) = cnf::lut_to_cnf_sat_instance(&net);
        group.bench_with_input(BenchmarkId::new("solve_k", k), &cnf, |b, cnf| {
            b.iter(|| solve_cnf(cnf, solver.clone(), Budget::conflicts(100_000)))
        });
    }
    group.finish();
}

fn bench_encodings(c: &mut Criterion) {
    let m = miter(&array_multiplier(4).aig, &column_multiplier(4).aig);
    let solver = SolverConfig::kissat_like();
    let mut group = c.benchmark_group("cnf_encoding");
    group.sample_size(10);
    let tseitin = BaselinePipeline.preprocess(&m).cnf;
    group.bench_function("solve_tseitin", |b| {
        b.iter(|| solve_cnf(&tseitin, solver.clone(), Budget::conflicts(100_000)))
    });
    let net = map_luts(&m, &MapParams::default(), &BranchingCost::new());
    let (lut_cnf, _) = cnf::lut_to_cnf_sat_instance(&net);
    group.bench_function("solve_lut_isop", |b| {
        b.iter(|| solve_cnf(&lut_cnf, solver.clone(), Budget::conflicts(100_000)))
    });
    group.finish();
}

criterion_group!(benches, bench_cost_models, bench_k_sweep, bench_encodings);
criterion_main!(benches);
