//! Criterion bench for **Table I**: cost of generating the training
//! dataset and producing its statistics (dataset generation, Tseitin
//! encoding, budgeted baseline solve).

use bench::experiments::{table1, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use csat_preproc::{BaselinePipeline, Pipeline};
use sat::{solve_cnf, Budget, SolverConfig};
use workloads::dataset::{generate, DatasetParams};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    group.bench_function("dataset_generation_8", |b| {
        b.iter(|| generate(&DatasetParams::training(8), 0xAB1E))
    });

    let set = generate(
        &DatasetParams {
            count: 1,
            min_bits: 8,
            max_bits: 8,
            hard_multipliers: false,
        },
        1,
    );
    let inst = &set[0];
    group.bench_function("tseitin_encode", |b| {
        b.iter(|| BaselinePipeline.preprocess(&inst.aig))
    });

    let pre = BaselinePipeline.preprocess(&inst.aig);
    group.bench_function("baseline_solve", |b| {
        b.iter(|| {
            solve_cnf(
                &pre.cnf,
                SolverConfig::kissat_like(),
                Budget::conflicts(30_000),
            )
        })
    });

    group.bench_function("full_table_quick", |b| {
        let scale = Scale::quick();
        b.iter(|| table1(&scale))
    });

    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
