//! Shared experiment machinery for the binaries and Criterion benches.

use csat_preproc::report::{
    cactus, run_campaign, summarize, total_decisions, total_runtime, RunRecord, Summary,
};
use csat_preproc::{BaselinePipeline, CompPipeline, FrameworkPipeline, Pipeline};
use rl::env::EnvConfig;
use rl::train::{train_agent, TrainConfig};
use rl::{DqnAgent, DqnConfig, RecipePolicy};
use sat::{solve_cnf, Budget, SolverConfig};
use workloads::dataset::{generate, instance_stats, DatasetParams};
use workloads::Instance;

/// Experiment scale: how big, how many, how long.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Training instances (paper: 200).
    pub train_count: usize,
    /// Test instances (paper: 300).
    pub test_count: usize,
    /// RL training episodes (paper: 10 000).
    pub episodes: usize,
    /// Conflict budget standing in for the paper's 1000 s timeout.
    pub budget_conflicts: u64,
    /// Timeout penalty in seconds when totalling runtimes.
    pub penalty_secs: f64,
    /// Width range of training datapath blocks.
    pub train_bits: (usize, usize),
    /// Width range of test datapath blocks.
    pub test_bits: (usize, usize),
    /// Hard-set difficulty (0 = easy profile for CI, 1+ = `generate_hard`).
    pub hard_difficulty: usize,
}

impl Scale {
    /// Seconds-scale runs for Criterion and CI.
    pub fn quick() -> Scale {
        Scale {
            train_count: 8,
            test_count: 9,
            episodes: 12,
            budget_conflicts: 30_000,
            penalty_secs: 5.0,
            train_bits: (4, 8),
            test_bits: (6, 12),
            hard_difficulty: 0,
        }
    }

    /// Minutes-scale runs; the default for the `run_*` binaries.
    pub fn standard() -> Scale {
        Scale {
            train_count: 40,
            test_count: 36,
            episodes: 1_200,
            budget_conflicts: 400_000,
            penalty_secs: 60.0,
            train_bits: (4, 10),
            test_bits: (8, 20),
            hard_difficulty: 1,
        }
    }

    /// Paper-shaped counts (hours-scale on one core).
    pub fn full() -> Scale {
        Scale {
            train_count: 200,
            test_count: 300,
            episodes: 4_000,
            budget_conflicts: 3_000_000,
            penalty_secs: 1000.0,
            train_bits: (4, 12),
            test_bits: (8, 24),
            hard_difficulty: 2,
        }
    }

    /// Reads `CSAT_SCALE` (`quick`/`standard`/`full`), with a fallback.
    pub fn from_env(default: Scale) -> Scale {
        match std::env::var("CSAT_SCALE").as_deref() {
            Ok("quick") => Scale::quick(),
            Ok("standard") => Scale::standard(),
            Ok("full") => Scale::full(),
            _ => default,
        }
    }

    /// The solve budget as a [`Budget`].
    pub fn budget(&self) -> Budget {
        Budget::conflicts(self.budget_conflicts)
    }

    fn train_params(&self) -> DatasetParams {
        DatasetParams {
            count: self.train_count,
            min_bits: self.train_bits.0,
            max_bits: self.train_bits.1,
            hard_multipliers: false,
        }
    }

    fn test_params(&self) -> DatasetParams {
        DatasetParams {
            count: self.test_count,
            min_bits: self.test_bits.0,
            max_bits: self.test_bits.1,
            hard_multipliers: true,
        }
    }
}

/// Deterministic training split.
pub fn train_split(scale: &Scale) -> Vec<Instance> {
    generate(&scale.train_params(), 0xAB1E)
}

/// Deterministic test split (disjoint seed). Scales with non-zero
/// `hard_difficulty` use the hard profile of [`workloads::dataset::generate_hard`],
/// matching the paper's "300 hard instances for testing".
pub fn test_split(scale: &Scale) -> Vec<Instance> {
    if scale.hard_difficulty > 0 {
        workloads::dataset::generate_hard(scale.test_count, 0xC0DE, scale.hard_difficulty)
    } else {
        generate(&scale.test_params(), 0xC0DE)
    }
}

/// Resolves a solver preset by name.
///
/// # Panics
/// Panics on unknown names.
pub fn solver_preset(name: &str) -> SolverConfig {
    match name {
        "kissat" => SolverConfig::kissat_like(),
        "cadical" => SolverConfig::cadical_like(),
        other => panic!("unknown solver preset '{other}' (use kissat|cadical)"),
    }
}

/// Trains the RL agent on the training split (the paper's Sec. III-B run).
pub fn trained_agent(scale: &Scale) -> DqnAgent {
    let instances: Vec<aig::Aig> = train_split(scale).into_iter().map(|i| i.aig).collect();
    let cfg = TrainConfig {
        episodes: scale.episodes,
        env: EnvConfig {
            budget: Budget::conflicts(scale.budget_conflicts.min(50_000)),
            ..EnvConfig::default()
        },
        dqn: DqnConfig {
            eps_decay_steps: (scale.episodes as u64 * 6).max(60),
            ..DqnConfig::default()
        },
        seed: 0x5EED,
    };
    let (agent, _) = train_agent(&instances, &cfg);
    agent
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// One Table-I row: a metric summarised over the training set.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Metric name.
    pub metric: &'static str,
    /// Avg/Std/Min/Max.
    pub summary: Summary,
}

/// Regenerates Table I: statistics of the training dataset
/// (#gates, #PIs, depth, #clauses after Tseitin, baseline solve time).
pub fn table1(scale: &Scale) -> Vec<Table1Row> {
    let set = train_split(scale);
    let mut gates = Vec::new();
    let mut pis = Vec::new();
    let mut depth = Vec::new();
    let mut clauses = Vec::new();
    let mut times = Vec::new();
    for inst in &set {
        let s = instance_stats(&inst.aig);
        gates.push(s.gates as f64);
        pis.push(s.pis as f64);
        depth.push(s.depth as f64);
        let pre = BaselinePipeline.preprocess(&inst.aig);
        clauses.push(pre.cnf.num_clauses() as f64);
        let t0 = std::time::Instant::now();
        let _ = solve_cnf(&pre.cnf, SolverConfig::kissat_like(), scale.budget());
        times.push(t0.elapsed().as_secs_f64());
    }
    vec![
        Table1Row {
            metric: "# Gates",
            summary: summarize(&gates),
        },
        Table1Row {
            metric: "# PIs",
            summary: summarize(&pis),
        },
        Table1Row {
            metric: "Depth",
            summary: summarize(&depth),
        },
        Table1Row {
            metric: "# Clauses",
            summary: summarize(&clauses),
        },
        Table1Row {
            metric: "Time (s)",
            summary: summarize(&times),
        },
    ]
}

/// Renders Table I in the paper's format.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}\n",
        "", "Avg.", "Std.", "Min.", "Max."
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>12.2} {:>12.2} {:>12.2} {:>12.2}\n",
            r.metric, r.summary.avg, r.summary.std, r.summary.min, r.summary.max
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 4 / Fig. 5 campaigns
// ---------------------------------------------------------------------------

/// One experiment arm: a named pipeline's records over the test set.
#[derive(Clone, Debug)]
pub struct Arm {
    /// Pipeline label.
    pub name: String,
    /// Per-instance records.
    pub records: Vec<RunRecord>,
}

impl Arm {
    /// Total runtime with timeout penalty.
    pub fn total_secs(&self, penalty: f64) -> f64 {
        total_runtime(&self.records, penalty)
    }

    /// Number of solved instances.
    pub fn solved(&self) -> usize {
        self.records.iter().filter(|r| r.solved()).count()
    }

    /// Total branching decisions.
    pub fn decisions(&self) -> u64 {
        total_decisions(&self.records)
    }

    /// Cactus-plot series.
    pub fn cactus(&self) -> Vec<(f64, usize)> {
        cactus(&self.records)
    }
}

/// Runs the Fig. 4 comparison — Baseline vs. Comp. vs. Ours — under one
/// solver preset. `agent` is the trained agent for the *Ours* arm (pass
/// `None` to fall back to the fixed size-script policy, used by the quick
/// Criterion benches where training would dominate the measurement).
pub fn fig4(scale: &Scale, solver_name: &str, agent: Option<DqnAgent>) -> Vec<Arm> {
    let test = test_split(scale);
    let solver = solver_preset(solver_name);
    let budget = scale.budget();
    let ours_policy = match agent {
        Some(a) => RecipePolicy::Agent(Box::new(a)),
        None => RecipePolicy::Fixed(synth::Recipe::size_script()),
    };
    let pipelines: Vec<Box<dyn Pipeline>> = vec![
        Box::new(BaselinePipeline),
        Box::new(CompPipeline::default()),
        Box::new(FrameworkPipeline::ours(ours_policy)),
    ];
    pipelines
        .iter()
        .map(|p| Arm {
            name: p.name(),
            records: run_campaign(p.as_ref(), &test, solver_name, &solver, budget.clone()),
        })
        .collect()
}

/// Runs the Fig. 5 ablation — Ours vs. w/o RL vs. C. Mapper — under the
/// Kissat-like preset (as in the paper's ablation section).
pub fn fig5(scale: &Scale, agent: Option<DqnAgent>) -> Vec<Arm> {
    let test = test_split(scale);
    let solver = solver_preset("kissat");
    let budget = scale.budget();
    let ours_policy = match agent {
        Some(a) => RecipePolicy::Agent(Box::new(a)),
        None => RecipePolicy::Fixed(synth::Recipe::size_script()),
    };
    let pipelines: Vec<Box<dyn Pipeline>> = vec![
        Box::new(FrameworkPipeline::ours(ours_policy.clone())),
        Box::new(FrameworkPipeline::without_rl(0xF165, 10)),
        Box::new(FrameworkPipeline::conventional_mapper(ours_policy)),
    ];
    pipelines
        .iter()
        .map(|p| Arm {
            name: p.name(),
            records: run_campaign(p.as_ref(), &test, "kissat", &solver, budget.clone()),
        })
        .collect()
}

/// Renders arm totals + cactus series in the paper's Fig. 4/5 shape.
pub fn render_arms(arms: &[Arm], penalty: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>8} {:>14} {:>14}\n",
        "pipeline", "solved", "total time (s)", "decisions"
    ));
    for a in arms {
        out.push_str(&format!(
            "{:<12} {:>8} {:>14.2} {:>14}\n",
            a.name,
            a.solved(),
            a.total_secs(penalty),
            a.decisions()
        ));
    }
    out.push_str("\ncactus series (cumulative seconds, instances solved):\n");
    for a in arms {
        let series = a.cactus();
        out.push_str(&format!("  {:<12}", a.name));
        // Print at most 12 evenly spaced points.
        let step = (series.len() / 12).max(1);
        for (t, n) in series.iter().step_by(step) {
            out.push_str(&format!(" ({t:.2},{n})"));
        }
        out.push('\n');
    }
    out
}

/// Writes records as CSV (hand-rolled; avoids extra dependencies).
pub fn records_to_csv(arms: &[Arm]) -> String {
    let mut out = String::from(
        "pipeline,solver,instance,status,decisions,conflicts,cnf_vars,cnf_clauses,preprocess_secs,solve_secs,recipe\n",
    );
    for arm in arms {
        for r in &arm.records {
            let status = match &r.status {
                csat_preproc::report::Status::Sat { .. } => "sat",
                csat_preproc::report::Status::Unsat => "unsat",
                csat_preproc::report::Status::Timeout => "timeout",
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{:.6},{:.6},{}\n",
                arm.name,
                r.solver,
                r.instance,
                status,
                r.decisions,
                r.conflicts,
                r.cnf_vars,
                r.cnf_clauses,
                r.preprocess_secs,
                r.solve_secs,
                r.recipe.replace(',', ";")
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_are_deterministic_and_disjoint_seeds() {
        let s = Scale::quick();
        let a = train_split(&s);
        let b = train_split(&s);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].name, b[0].name);
        let t = test_split(&s);
        assert_eq!(t.len(), s.test_count);
    }

    #[test]
    fn table1_has_five_rows() {
        let rows = table1(&Scale::quick());
        assert_eq!(rows.len(), 5);
        let rendered = render_table1(&rows);
        assert!(rendered.contains("# Gates"));
        assert!(rendered.contains("Time (s)"));
    }

    #[test]
    fn fig4_quick_shape_holds() {
        let arms = fig4(&Scale::quick(), "kissat", None);
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].name, "Baseline");
        assert_eq!(arms[2].name, "Ours");
        // Everything within budget on the quick scale.
        for a in &arms {
            assert!(
                a.solved() >= a.records.len() - 2,
                "{} timed out too much",
                a.name
            );
        }
        let csv = records_to_csv(&arms);
        assert!(csv.lines().count() > arms.len());
    }

    #[test]
    fn solver_preset_names() {
        let _ = solver_preset("kissat");
        let _ = solver_preset("cadical");
        assert!(std::panic::catch_unwind(|| solver_preset("minisat")).is_err());
    }
}
