//! # `bench` — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section:
//!
//! | Paper artefact | Binary | Criterion bench |
//! |----------------|--------|-----------------|
//! | Table I (training-set statistics) | `run_table1` | `table1` |
//! | Fig. 4(a) runtime comparison, Kissat | `run_fig4 --solver kissat` | `fig4_kissat` |
//! | Fig. 4(c) runtime comparison, CaDiCaL | `run_fig4 --solver cadical` | `fig4_cadical` |
//! | Fig. 5 ablations (w/o RL, C. Mapper) | `run_fig5` | `fig5_ablation` |
//! | extra ablations (cost model, k, encoding) | — | `mapper_cost`, `solver` |
//!
//! Scale is controlled by the `CSAT_SCALE` environment variable
//! (`quick` | `standard` | `full`); binaries default to `standard`,
//! criterion benches to `quick`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
