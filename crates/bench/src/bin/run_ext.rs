//! Regenerates the **extension ablations** (not paper figures — see
//! DESIGN.md §5): SAT sweeping (fraig) ahead of the cost-customised
//! mapping, and SatELite-style CNF presolve behind it, measured on the
//! same hard test split as Fig. 4/5 plus the extended workload families.
//!
//! ```text
//! CSAT_SCALE=standard cargo run --release -p bench --bin run_ext
//! ```

use bench::experiments::{solver_preset, test_split, Scale};
use csat_preproc::{BaselinePipeline, FrameworkPipeline, Pipeline};
use rl::RecipePolicy;
use sat::presolve::{solve_cnf_presolved, PresolveConfig};
use sat::solve_cnf;
use std::time::Instant;
use sweep::FraigParams;
use synth::Recipe;
use workloads::dataset::{generate_extended, DatasetParams};
use workloads::Instance;

fn main() {
    let scale = Scale::from_env(Scale::standard());
    let solver = solver_preset("kissat");
    let budget = scale.budget();

    // Arm set: Baseline, Ours, Ours+fraig; each also solved with presolve.
    let policy = || RecipePolicy::Fixed(Recipe::size_script());
    let arms: Vec<(&str, Box<dyn Pipeline>)> = vec![
        ("Baseline", Box::new(BaselinePipeline)),
        ("Ours", Box::new(FrameworkPipeline::ours(policy()))),
        (
            "Ours+fraig",
            Box::new(FrameworkPipeline::ours(policy()).with_sweep(FraigParams::default())),
        ),
    ];

    for (set_name, instances) in [
        ("hard test split (Fig. 4/5 instances)", test_split(&scale)),
        (
            "extended families (prefix adders / tree multipliers / shifters)",
            generate_extended(
                &DatasetParams {
                    count: scale.test_count / 2,
                    min_bits: scale.test_bits.0,
                    max_bits: scale.test_bits.1,
                    hard_multipliers: false,
                },
                0xE87,
            ),
        ),
    ] {
        println!("==================== {set_name} ====================");
        println!(
            "{:<12} {:>7} {:>14} {:>12} | {:>14} {:>12}",
            "pipeline", "solved", "total time (s)", "decisions", "+presolve t(s)", "decisions"
        );
        for (name, p) in &arms {
            let mut report = ArmReport::default();
            for inst in &instances {
                measure(p.as_ref(), inst, &solver, &budget, &mut report);
            }
            println!(
                "{:<12} {:>7} {:>14.2} {:>12} | {:>14.2} {:>12}",
                name,
                report.solved,
                report.plain_secs,
                report.plain_decisions,
                report.presolved_secs,
                report.presolved_decisions
            );
        }
        println!();
    }
}

#[derive(Default)]
struct ArmReport {
    solved: usize,
    plain_secs: f64,
    plain_decisions: u64,
    presolved_secs: f64,
    presolved_decisions: u64,
}

fn measure(
    p: &dyn Pipeline,
    inst: &Instance,
    solver: &sat::SolverConfig,
    budget: &sat::Budget,
    report: &mut ArmReport,
) {
    let t0 = Instant::now();
    let pre = p.preprocess(&inst.aig);
    let preprocess = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let (res, stats) = solve_cnf(&pre.cnf, solver.clone(), budget.clone());
    report.plain_secs += preprocess + t0.elapsed().as_secs_f64();
    report.plain_decisions += stats.decisions;
    if let (Some(expected), false) = (inst.expected, matches!(res, sat::SolveResult::Unknown)) {
        assert_eq!(
            res.is_sat(),
            expected,
            "{}: verdict broken by {}",
            inst.name,
            p.name()
        );
    }
    if !matches!(res, sat::SolveResult::Unknown) {
        report.solved += 1;
    }

    let t0 = Instant::now();
    let (res2, stats2) = solve_cnf_presolved(
        &pre.cnf,
        solver.clone(),
        budget.clone(),
        &PresolveConfig::default(),
    );
    report.presolved_secs += preprocess + t0.elapsed().as_secs_f64();
    report.presolved_decisions += stats2.decisions;
    if let (Some(expected), false) = (inst.expected, matches!(res2, sat::SolveResult::Unknown)) {
        assert_eq!(
            res2.is_sat(),
            expected,
            "{}: verdict broken by presolve",
            inst.name
        );
    }
}
