//! Regenerates **Fig. 5** — the ablation study: *Ours* vs. *w/o RL*
//! (random recipes) vs. *C. Mapper* (conventional area-cost mapping).
//!
//! ```text
//! CSAT_SCALE=standard cargo run --release -p bench --bin run_fig5
//! ```

use bench::experiments::{fig5, records_to_csv, render_arms, trained_agent, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned());
    let scale = Scale::from_env(Scale::standard());

    println!(
        "== Fig. 5: ablation study ({} test instances, budget {} conflicts) ==",
        scale.test_count, scale.budget_conflicts
    );
    println!("training RL agent ({} episodes)...", scale.episodes);
    let agent = trained_agent(&scale);
    let arms = fig5(&scale, Some(agent));
    print!("{}", render_arms(&arms, scale.penalty_secs));

    let ours = arms[0].total_secs(scale.penalty_secs);
    let worl = arms[1].total_secs(scale.penalty_secs);
    let cmap = arms[2].total_secs(scale.penalty_secs);
    println!(
        "\nw/o RL overhead: {:+.1}% (paper: +13.6%)   C. Mapper overhead: {:+.1}% (paper: +50.8%)",
        100.0 * (worl / ours - 1.0),
        100.0 * (cmap / ours - 1.0)
    );
    if let Some(path) = csv_path {
        std::fs::write(&path, records_to_csv(&arms)).expect("write csv");
        println!("records written to {path}");
    }
}
