//! Hot-path throughput harness: `BENCH_hotpath.json` emitter.
//!
//! Times the two kernels the preprocessing pipeline lives in — CDCL
//! two-watched-literal propagation and bit-parallel resimulation — plus an
//! end-to-end fraig run, on fixed built-in workloads. The JSON output is
//! the recorded perf trajectory for this and future optimisation PRs:
//! run it before and after a change and diff the throughput numbers.
//!
//! Usage: `bench_hotpath [--smoke] [--out PATH] [--threads LIST]`
//!
//! `--smoke` shrinks every workload so CI can assert the harness still
//! runs and the JSON still carries the expected keys in a few seconds.
//! `--threads 1,2,4` selects the thread counts for the parallel kernels
//! (resimulation and fraig); each count gets its own row, so cross-PR
//! tables can separate single-thread kernel speed from scaling. The
//! `context` object records the machine facts (available parallelism,
//! build profile) that make those rows comparable across PRs.

use cnf::Cnf;
use csat_preproc::{BaselinePipeline, Pipeline};
use mc::{BmcEngine, BmcOptions, BmcResult};
use sat::{solve_cnf, Budget, SolverConfig};
use std::fmt::Write as _;
use std::time::Instant;
use sweep::{fraig, FraigParams};
use workloads::cnf_gen::{pigeonhole, random_2sat, random_3sat};
use workloads::datapath::{carry_lookahead_adder, ripple_carry_adder};
use workloads::lec::{adder_miter, miter};
use workloads::random_aig::{random_aig, RandomAigParams};
use workloads::seq::counter;

struct SolverRow {
    name: &'static str,
    wall_s: f64,
    propagations: u64,
    conflicts: u64,
    props_per_sec: f64,
    deadline_interrupts: u64,
    cancellations: u64,
}

/// Times one workload: a warm-up run (unobserved, so registry totals
/// cover exactly the timed reps), then `reps` runs observed through `reg`
/// — the same `obs` export path the CLI prints, so the report's solver
/// totals can be cross-checked against one registry snapshot.
fn time_solver(
    name: &'static str,
    f: &Cnf,
    cfg: SolverConfig,
    reps: usize,
    reg: &obs::Registry,
) -> SolverRow {
    let run = |observed: bool| {
        let mut solver = sat::Solver::from_cnf(f, cfg.clone());
        if observed {
            solver.set_observer(reg.root());
        }
        solver.set_budget(Budget::conflicts(2_000_000));
        // Unit clauses propagate at load time, before solve(); report the
        // per-solve delta — exactly what the registry counters accumulate.
        let pre = *solver.stats();
        let _ = solver.solve();
        let post = *solver.stats();
        sat::Stats {
            propagations: post.propagations - pre.propagations,
            conflicts: post.conflicts - pre.conflicts,
            ..post
        }
    };
    let _ = run(false); // warm-up
    let start = Instant::now();
    let mut propagations = 0u64;
    let mut conflicts = 0u64;
    let mut deadline_interrupts = 0u64;
    let mut cancellations = 0u64;
    for _ in 0..reps {
        let stats = run(true);
        propagations += stats.propagations;
        conflicts += stats.conflicts;
        deadline_interrupts += stats.deadline_interrupts;
        cancellations += stats.cancellations;
    }
    let wall_s = start.elapsed().as_secs_f64();
    SolverRow {
        name,
        wall_s,
        propagations,
        conflicts,
        props_per_sec: propagations as f64 / wall_s.max(1e-9),
        deadline_interrupts,
        cancellations,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_hotpath.json", |s| s.as_str());
    let thread_counts: Vec<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("--threads takes e.g. 1,2,4"))
                .collect()
        })
        .unwrap_or_else(|| if smoke { vec![1, 2] } else { vec![1, 2, 4] });

    let (php_holes, sat_vars, twosat_vars, adder_bits, solver_reps) = if smoke {
        (5, 40, 2_000, 4, 1)
    } else {
        (8, 150, 120_000, 12, 3)
    };

    // --- CDCL propagation kernel ---------------------------------------
    let lec_cnf = {
        let a = ripple_carry_adder(adder_bits);
        let b = carry_lookahead_adder(adder_bits);
        BaselinePipeline.preprocess(&miter(&a.aig, &b.aig)).cnf
    };
    // Every timed rep publishes into this registry; the `totals` section
    // reads its counters back, cross-checked against the per-row sums.
    let solver_reg = obs::Registry::metrics_only();
    let solver_rows = [
        time_solver(
            "php",
            &pigeonhole(php_holes),
            SolverConfig::kissat_like(),
            solver_reps,
            &solver_reg,
        ),
        time_solver(
            "random3sat",
            &random_3sat(sat_vars, 4.2, 3),
            SolverConfig::kissat_like(),
            solver_reps,
            &solver_reg,
        ),
        // All-binary workload: propagation runs entirely in the solver's
        // inline binary-watcher tier (ratio just under the 2-SAT
        // threshold keeps it SAT with long implication chains).
        time_solver(
            "random2sat",
            &random_2sat(twosat_vars, 0.95, 9),
            SolverConfig::kissat_like(),
            solver_reps,
            &solver_reg,
        ),
        time_solver(
            "lec_miter",
            &lec_cnf,
            SolverConfig::cadical_like(),
            solver_reps,
            &solver_reg,
        ),
    ];

    // --- proof logging: zero-cost-when-off + logging overhead -----------
    // Same php workload as the solver row, solved with proof logging off
    // and on. The off row must stay within noise of the plain solver rows
    // (the disabled path is one `None` check at conflict rate); the on
    // row records the real cost of recording every learnt and deleted
    // clause. The certificate is then verified by the independent
    // checker, whose wall time and verdict are part of the row — CI fails
    // the build if the certificate is rejected.
    struct ProofRow {
        logging_off_wall_s: f64,
        logging_on_wall_s: f64,
        overhead_ratio: f64,
        proof_additions: usize,
        proof_deletions: usize,
        check_wall_s: f64,
        check_verified: bool,
    }
    let proof_row = {
        let f = pigeonhole(php_holes);
        let time_php = |proof: bool| {
            let mut cfg = SolverConfig::kissat_like();
            cfg.proof = proof;
            let mut solver = sat::Solver::from_cnf(&f, cfg.clone());
            assert!(solver.solve().is_unsat(), "php is UNSAT"); // warm-up
            let start = Instant::now();
            for _ in 0..solver_reps {
                solver = sat::Solver::from_cnf(&f, cfg.clone());
                assert!(solver.solve().is_unsat(), "php is UNSAT");
            }
            (start.elapsed().as_secs_f64(), solver)
        };
        let (logging_off_wall_s, _) = time_php(false);
        let (logging_on_wall_s, solver) = time_php(true);
        let log = solver.proof().expect("proof logging was on");
        let formula: Vec<Vec<i32>> = f
            .clauses()
            .iter()
            .map(|c| c.iter().map(|l| l.to_dimacs()).collect())
            .collect();
        let proof =
            checker::Proof::from_steps(log.steps().iter().map(|s| (s.delete, s.lits.clone())));
        let start = Instant::now();
        let check_verified = checker::check(&formula, &proof).is_ok();
        ProofRow {
            logging_off_wall_s,
            logging_on_wall_s,
            overhead_ratio: logging_on_wall_s / logging_off_wall_s.max(1e-9),
            proof_additions: log.additions(),
            proof_deletions: log.deletions(),
            check_wall_s: start.elapsed().as_secs_f64(),
            check_verified,
        }
    };

    // --- observability: zero-cost-when-off + tracing overhead -----------
    // Same php workload, solved three ways: no observer, a
    // disabled-registry observer (which must detach entirely — one branch
    // per probe site), and a full tracing registry. The disabled wall
    // must stay within noise of the baseline; the tracing wall records
    // the real cost of span + counter emission. The tracing run also
    // proves the single-source property: the conflict counts recorded on
    // `sat.solve` span exits sum to exactly the registry's live counter.
    struct ObsRow {
        baseline_wall_s: f64,
        disabled_wall_s: f64,
        disabled_overhead_ratio: f64,
        tracing_wall_s: f64,
        tracing_overhead_ratio: f64,
        events: usize,
        span_conflicts: u64,
        counter_conflicts: u64,
    }
    let obs_row = {
        let f = pigeonhole(php_holes);
        let time_php = |reg: Option<&obs::Registry>| {
            let cfg = SolverConfig::kissat_like();
            let run = || {
                let mut solver = sat::Solver::from_cnf(&f, cfg.clone());
                if let Some(r) = reg {
                    solver.set_observer(r.root());
                }
                assert!(solver.solve().is_unsat(), "php is UNSAT");
            };
            run(); // warm-up
            let start = Instant::now();
            for _ in 0..solver_reps {
                run();
            }
            start.elapsed().as_secs_f64()
        };
        let disabled = obs::Registry::disabled();
        let tracing = obs::Registry::tracing();
        let baseline_wall_s = time_php(None);
        let disabled_wall_s = time_php(Some(&disabled));
        let tracing_wall_s = time_php(Some(&tracing));
        let events = tracing.drain_events();
        obs::check::validate(&events).expect("bench trace stream well-formed");
        let span_conflicts = obs::check::sum_field(&events, "sat.solve", "conflicts");
        let counter_conflicts = tracing.snapshot().value("sat.conflicts").unwrap_or(0);
        assert_eq!(
            span_conflicts, counter_conflicts,
            "span tree and live counter must agree on total conflicts"
        );
        ObsRow {
            baseline_wall_s,
            disabled_wall_s,
            disabled_overhead_ratio: disabled_wall_s / baseline_wall_s.max(1e-9),
            tracing_wall_s,
            tracing_overhead_ratio: tracing_wall_s / baseline_wall_s.max(1e-9),
            events: events.len(),
            span_conflicts,
            counter_conflicts,
        }
    };

    // --- bit-parallel resimulation kernel -------------------------------
    // One row per (engine, thread count): the interpreter walks the graph
    // per block; the compiled engine runs the levelized fused-op
    // [`aig::SimProgram`]. Both fill the same strided matrix from the
    // same per-block RNG streams, so the whole-matrix checksum must be
    // identical across every row — CI's perf-smoke job fails the build on
    // any disagreement (a vacuous last-row XOR used to sit here; the
    // checksum now mixes every word, rotated by column, so a wrong row
    // anywhere in the matrix changes it).
    let (sim_gates, sim_words, sim_reps) = if smoke {
        (500, 16, 2)
    } else {
        (20_000, 64, 10)
    };
    let g = random_aig(
        &RandomAigParams {
            n_pis: 64,
            n_gates: sim_gates,
            n_pos: 8,
            ..RandomAigParams::default()
        },
        0xC0FFEE,
    );
    struct SimRow {
        engine: &'static str,
        threads: usize,
        wall_s: f64,
        words_simulated: u64,
        words_per_sec: f64,
        checksum: u64,
    }
    let prog = aig::SimProgram::full(&g);
    let mut sigs = aig::sim::SimVectors::zero(g.num_nodes(), sim_words);
    let mut sim_rows: Vec<SimRow> = Vec::new();
    for engine in ["interpreter", "compiled"] {
        for &threads in &thread_counts {
            let fill = |sigs: &mut aig::sim::SimVectors, seed: u64| match engine {
                "interpreter" => {
                    aig::sim::random_columns_par(&g, sigs, 0, sim_words, seed, threads)
                }
                _ => aig::sim::random_columns_prog(&prog, sigs, 0, sim_words, seed, threads),
            };
            fill(&mut sigs, 1); // warm-up
            let start = Instant::now();
            let mut checksum = 0u64;
            for rep in 0..sim_reps {
                fill(&mut sigs, rep as u64);
                checksum = checksum.rotate_left(1) ^ sigs.checksum();
            }
            let wall_s = start.elapsed().as_secs_f64();
            let words_simulated = (g.num_nodes() * sim_words * sim_reps) as u64;
            sim_rows.push(SimRow {
                engine,
                threads,
                wall_s,
                words_simulated,
                words_per_sec: words_simulated as f64 / wall_s.max(1e-9),
                checksum,
            });
        }
    }

    // --- fraig (sweep) kernel ------------------------------------------
    // Two kinds of rows per miter: a sequential *trajectory* row
    // (threads=1, one oracle — directly comparable with the PR 2/3
    // numbers), and *scaling* rows with the shard count pinned to the
    // largest tested thread count, so every scaling row does the same
    // sharded work and differs only in scheduling. adder-16 is the
    // historical workload; the wider miter gives each round enough SAT
    // work for thread scaling to show.
    let fraig_bits: &[usize] = if smoke { &[4] } else { &[16, 24] };
    let pinned_shards = thread_counts.iter().copied().max().unwrap_or(1);
    struct FraigRow {
        bits: usize,
        threads: usize,
        shards: usize,
        sim_engine: &'static str,
        wall_s: f64,
        sat_calls: u64,
        proved: u64,
        disproved: u64,
        rounds: u64,
        deadline_interrupts: u64,
        shard_failures: u64,
        ands_out: usize,
    }
    let mut fraig_rows: Vec<FraigRow> = Vec::new();
    for &bits in fraig_bits {
        let fg = adder_miter(bits);
        let mut run = |threads: usize, shards: usize, compiled_sim: bool| {
            // Per-row registry: row telemetry is read back from the
            // published `sweep.stats.*` gauges — the same export path the
            // CLI prints — not from the returned stats struct. The
            // warm-up publishes too; last-write-wins leaves the timed run.
            let reg = obs::Registry::metrics_only();
            let params = FraigParams {
                threads,
                shards,
                compiled_sim,
                obs: reg.clone(),
                ..FraigParams::default()
            };
            let _ = fraig(&fg, &params); // warm-up
            let start = Instant::now();
            let out = fraig(&fg, &params);
            let wall_s = start.elapsed().as_secs_f64();
            let snap = reg.snapshot();
            let gauge = |k: &str| snap.value(k).unwrap_or(0);
            fraig_rows.push(FraigRow {
                bits,
                threads,
                shards,
                sim_engine: if compiled_sim {
                    "compiled"
                } else {
                    "interpreter"
                },
                wall_s,
                sat_calls: gauge("sweep.stats.sat_calls"),
                proved: gauge("sweep.stats.proved"),
                disproved: gauge("sweep.stats.disproved"),
                rounds: gauge("sweep.stats.rounds"),
                deadline_interrupts: gauge("sweep.stats.deadline_interrupts"),
                shard_failures: gauge("sweep.stats.shard_failures"),
                ands_out: out.aig.num_ands(),
            });
        };
        // Trajectory rows (threads=1, one oracle), one per sim engine —
        // the simulation matrices are bit-identical, so the sweep stats
        // must agree row-to-row; the wall gap is the sim engine's share.
        run(1, 1, false);
        run(1, 1, true);
        for &threads in &thread_counts {
            run(threads, pinned_shards, true);
        }
    }

    // --- BMC depth sweep: incremental engine vs monolithic baseline -----
    // One machine, every bound up to `bmc_bound`, all queries UNSAT (the
    // counter cannot saturate within the bound). The incremental engine
    // keeps one solver across the sweep; the monolithic baseline
    // re-unrolls, re-encodes and re-solves from scratch per bound — the
    // cumulative conflict gap is the learnt-clause reuse, the wall gap
    // adds the O(k^2) re-encoding.
    let (bmc_bits, bmc_bound) = if smoke { (5, 6) } else { (8, 20) };
    let machine = counter(bmc_bits);
    struct BmcRow {
        name: &'static str,
        bits: usize,
        bound: usize,
        incremental_wall_s: f64,
        incremental_conflicts: u64,
        monolithic_wall_s: f64,
        monolithic_conflicts: u64,
        verdicts_agree: bool,
    }
    let bmc_row = {
        let start = Instant::now();
        let mut engine = BmcEngine::new(&machine, BmcOptions::default());
        let mut inc_clean_per_bound = Vec::with_capacity(bmc_bound);
        for k in 1..=bmc_bound {
            inc_clean_per_bound.push(matches!(engine.check_frames(k), BmcResult::Clean { .. }));
        }
        let incremental_wall_s = start.elapsed().as_secs_f64();
        let incremental_conflicts = engine.stats().conflicts;

        let start = Instant::now();
        let mut monolithic_conflicts = 0u64;
        let mut verdicts_agree = true;
        for k in 1..=bmc_bound {
            let inst = machine.bmc_instance(k);
            let (f, _) = cnf::tseitin_sat_instance(&inst);
            let (res, stats) = solve_cnf(&f, SolverConfig::default(), Budget::UNLIMITED);
            monolithic_conflicts += stats.conflicts;
            verdicts_agree &= res.is_unsat() == inc_clean_per_bound[k - 1];
        }
        let monolithic_wall_s = start.elapsed().as_secs_f64();
        BmcRow {
            name: "bmc_counter",
            bits: bmc_bits,
            bound: bmc_bound,
            incremental_wall_s,
            incremental_conflicts,
            monolithic_wall_s,
            monolithic_conflicts,
            verdicts_agree,
        }
    };

    // --- serve: concurrent query engine throughput ----------------------
    // A regression-shaped LEC stream: one base adder pair plus a few
    // function-preserving restructured near-duplicates, each submitted
    // repeatedly. Repeats of an already-answered cone are cache hits (the
    // UNSAT certificate re-verifies once, then the hit is free); the
    // near-duplicates are distinct cache keys and solve live. Each worker
    // count gets a fresh engine with a cold cache, so rows are comparable:
    // qps folds solve + certificate-check + cache-service time together.
    // A clean run must report zero sheds/retries/failures — nonzero means
    // the row was degraded and CI's perf-smoke job fails the build.
    let (serve_bits, serve_queries, serve_variants) = if smoke { (3, 12, 3) } else { (6, 48, 3) };
    struct ServeRow {
        workers: usize,
        queries: usize,
        wall_s: f64,
        qps: f64,
        cache_hits: u64,
        cache_hit_rate: f64,
        certs_verified: u64,
        retries: u64,
        sheds: u64,
        failures: u64,
    }
    let serve_rows: Vec<ServeRow> = {
        use serve::{Engine, EngineConfig, Query, QueryOpts};
        use workloads::lec::restructure;
        let a = ripple_carry_adder(serve_bits).aig;
        let b = carry_lookahead_adder(serve_bits).aig;
        let pairs: Vec<(aig::Aig, aig::Aig)> = std::iter::once(b.clone())
            .chain((0..serve_variants as u64).map(|v| restructure(&b, 0x5e12_0000 + v)))
            .map(|rhs| (a.clone(), rhs))
            .collect();
        let stream: Vec<(Query, QueryOpts)> = (0..serve_queries)
            .map(|i| {
                let (l, r) = &pairs[i % pairs.len()];
                (Query::Lec(l.clone(), r.clone()), QueryOpts::default())
            })
            .collect();
        thread_counts
            .iter()
            .map(|&workers| {
                // Per-row registry: telemetry is read back from the
                // `serve.stats.*` gauges the engine publishes — the same
                // snapshot the CLI's `stats` command serves.
                let reg = obs::Registry::metrics_only();
                let engine = Engine::new(EngineConfig {
                    workers,
                    obs: reg.clone(),
                    ..EngineConfig::default()
                });
                let start = Instant::now();
                let responses = engine.run_batch(&stream);
                let wall_s = start.elapsed().as_secs_f64();
                assert!(
                    responses.iter().all(|r| r.verdict.is_unsat()),
                    "the adder LEC stream is all-UNSAT"
                );
                engine.stats().publish(&reg);
                engine.shutdown();
                let snap = reg.snapshot();
                let gauge = |k: &str| snap.value(k).unwrap_or(0);
                let cache_hits = gauge("serve.stats.cache_hits");
                ServeRow {
                    workers,
                    queries: serve_queries,
                    wall_s,
                    qps: serve_queries as f64 / wall_s.max(1e-9),
                    cache_hits,
                    cache_hit_rate: cache_hits as f64 / serve_queries as f64,
                    certs_verified: gauge("serve.stats.certs_verified"),
                    retries: gauge("serve.stats.retries"),
                    sheds: gauge("serve.stats.sheds"),
                    failures: gauge("serve.stats.failures"),
                }
            })
            .collect()
    };

    // --- report ---------------------------------------------------------
    // Solver totals come from the shared registry snapshot — the same
    // source `csat --metrics` prints — cross-checked against the per-row
    // struct sums so the two export paths can never silently diverge.
    let total_props: u64 = solver_reg
        .snapshot()
        .value("sat.propagations")
        .expect("observed solver reps registered the counter");
    assert_eq!(
        total_props,
        solver_rows.iter().map(|r| r.propagations).sum::<u64>(),
        "registry counter and per-row stats sums must agree"
    );
    let total_solver_wall: f64 = solver_rows.iter().map(|r| r.wall_s).sum();
    let sim_wall: f64 = sim_rows.iter().map(|r| r.wall_s).sum();
    let fraig_wall: f64 = fraig_rows.iter().map(|r| r.wall_s).sum();
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    // Machine context: what must match for cross-PR rows to be comparable.
    let _ = writeln!(
        json,
        "  \"context\": {{\"available_parallelism\": {}, \"threads_tested\": [{}], \"build_profile\": \"{}\", \"debug_assertions\": {}}},",
        std::thread::available_parallelism().map_or(0, |n| n.get()),
        thread_counts
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        if cfg!(debug_assertions) { "debug" } else { "release" },
        cfg!(debug_assertions)
    );
    json.push_str("  \"solver\": [\n");
    for (i, r) in solver_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"wall_s\": {:.6}, \"propagations\": {}, \"conflicts\": {}, \"props_per_sec\": {:.0}, \"deadline_interrupts\": {}, \"cancellations\": {}}}{}",
            r.name,
            r.wall_s,
            r.propagations,
            r.conflicts,
            r.props_per_sec,
            r.deadline_interrupts,
            r.cancellations,
            if i + 1 < solver_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    {
        let r = &proof_row;
        let _ = writeln!(
            json,
            "  \"proof\": {{\"name\": \"php\", \"holes\": {php_holes}, \"reps\": {solver_reps}, \"logging_off_wall_s\": {:.6}, \"logging_on_wall_s\": {:.6}, \"overhead_ratio\": {:.4}, \"proof_additions\": {}, \"proof_deletions\": {}, \"check_wall_s\": {:.6}, \"check_verified\": {}}},",
            r.logging_off_wall_s,
            r.logging_on_wall_s,
            r.overhead_ratio,
            r.proof_additions,
            r.proof_deletions,
            r.check_wall_s,
            r.check_verified
        );
    }
    {
        let r = &obs_row;
        let _ = writeln!(
            json,
            "  \"obs\": {{\"name\": \"php\", \"holes\": {php_holes}, \"reps\": {solver_reps}, \"baseline_wall_s\": {:.6}, \"disabled_wall_s\": {:.6}, \"disabled_overhead_ratio\": {:.4}, \"tracing_wall_s\": {:.6}, \"tracing_overhead_ratio\": {:.4}, \"events\": {}, \"span_conflicts\": {}, \"counter_conflicts\": {}}},",
            r.baseline_wall_s,
            r.disabled_wall_s,
            r.disabled_overhead_ratio,
            r.tracing_wall_s,
            r.tracing_overhead_ratio,
            r.events,
            r.span_conflicts,
            r.counter_conflicts
        );
    }
    json.push_str("  \"sim\": [\n");
    for (i, r) in sim_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"nodes\": {}, \"words\": {}, \"reps\": {}, \"engine\": \"{}\", \"threads\": {}, \"wall_s\": {:.6}, \"words_simulated\": {}, \"words_per_sec\": {:.0}, \"checksum\": {}}}{}",
            g.num_nodes(),
            sim_words,
            sim_reps,
            r.engine,
            r.threads,
            r.wall_s,
            r.words_simulated,
            r.words_per_sec,
            r.checksum,
            if i + 1 < sim_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"fraig\": [\n");
    for (i, r) in fraig_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"bits\": {}, \"threads\": {}, \"shards\": {}, \"sim_engine\": \"{}\", \"wall_s\": {:.6}, \"sat_calls\": {}, \"proved\": {}, \"disproved\": {}, \"rounds\": {}, \"ands_out\": {}, \"deadline_interrupts\": {}, \"shard_failures\": {}}}{}",
            r.bits,
            r.threads,
            r.shards,
            r.sim_engine,
            r.wall_s,
            r.sat_calls,
            r.proved,
            r.disproved,
            r.rounds,
            r.ands_out,
            r.deadline_interrupts,
            r.shard_failures,
            if i + 1 < fraig_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"bmc\": [\n");
    {
        let r = &bmc_row;
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"bits\": {}, \"bound\": {}, \"incremental_wall_s\": {:.6}, \"incremental_conflicts\": {}, \"monolithic_wall_s\": {:.6}, \"monolithic_conflicts\": {}, \"verdicts_agree\": {}}}",
            r.name,
            r.bits,
            r.bound,
            r.incremental_wall_s,
            r.incremental_conflicts,
            r.monolithic_wall_s,
            r.monolithic_conflicts,
            r.verdicts_agree
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"serve\": [\n");
    for (i, r) in serve_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"bits\": {serve_bits}, \"workers\": {}, \"queries\": {}, \"wall_s\": {:.6}, \"qps\": {:.1}, \"cache_hits\": {}, \"cache_hit_rate\": {:.4}, \"certs_verified\": {}, \"retries\": {}, \"sheds\": {}, \"failures\": {}}}{}",
            r.workers,
            r.queries,
            r.wall_s,
            r.qps,
            r.cache_hits,
            r.cache_hit_rate,
            r.certs_verified,
            r.retries,
            r.sheds,
            r.failures,
            if i + 1 < serve_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    // Single-thread compiled-vs-interpreter speedup: the PR 6 headline.
    let words_1t = |engine: &str| {
        sim_rows
            .iter()
            .find(|r| r.engine == engine && r.threads == thread_counts[0])
            .map_or(0.0, |r| r.words_per_sec)
    };
    // Failure telemetry: a healthy, unthrottled bench run reports zeros
    // here; anything else means the run was degraded and its perf rows
    // should not be compared against clean baselines.
    let total_deadline_interrupts: u64 = solver_rows
        .iter()
        .map(|r| r.deadline_interrupts)
        .chain(fraig_rows.iter().map(|r| r.deadline_interrupts))
        .sum();
    let total_cancellations: u64 = solver_rows.iter().map(|r| r.cancellations).sum();
    let total_shard_failures: u64 = fraig_rows.iter().map(|r| r.shard_failures).sum();
    let serve_wall: f64 = serve_rows.iter().map(|r| r.wall_s).sum();
    let serve_hits: u64 = serve_rows.iter().map(|r| r.cache_hits).sum();
    let serve_total_queries: u64 = serve_rows.iter().map(|r| r.queries as u64).sum();
    let serve_retries: u64 = serve_rows.iter().map(|r| r.retries).sum();
    let serve_sheds: u64 = serve_rows.iter().map(|r| r.sheds).sum();
    let serve_failures: u64 = serve_rows.iter().map(|r| r.failures).sum();
    let _ = writeln!(
        json,
        "  \"totals\": {{\"wall_s\": {:.6}, \"propagations_per_sec\": {:.0}, \"words_per_sec\": {:.0}, \"compiled_words_per_sec\": {:.0}, \"compiled_speedup_1t\": {:.3}, \"deadline_interrupts\": {}, \"cancellations\": {}, \"shard_failures\": {}, \"serve_cache_hit_rate\": {:.4}, \"serve_retries\": {}, \"serve_sheds\": {}, \"serve_failures\": {}}}",
        total_solver_wall + sim_wall + fraig_wall + bmc_row.incremental_wall_s
            + bmc_row.monolithic_wall_s + serve_wall,
        total_props as f64 / total_solver_wall.max(1e-9),
        words_1t("interpreter"),
        words_1t("compiled"),
        words_1t("compiled") / words_1t("interpreter").max(1e-9),
        total_deadline_interrupts,
        total_cancellations,
        total_shard_failures,
        serve_hits as f64 / (serve_total_queries as f64).max(1.0),
        serve_retries,
        serve_sheds,
        serve_failures
    );
    json.push_str("}\n");

    std::fs::write(out_path, &json).expect("write BENCH_hotpath.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
