//! Hot-path throughput harness: `BENCH_hotpath.json` emitter.
//!
//! Times the two kernels the preprocessing pipeline lives in — CDCL
//! two-watched-literal propagation and bit-parallel resimulation — plus an
//! end-to-end fraig run, on fixed built-in workloads. The JSON output is
//! the recorded perf trajectory for this and future optimisation PRs:
//! run it before and after a change and diff the throughput numbers.
//!
//! Usage: `bench_hotpath [--smoke] [--out PATH]`
//!
//! `--smoke` shrinks every workload so CI can assert the harness still
//! runs and the JSON still carries the expected keys in a few seconds.

use cnf::Cnf;
use csat_preproc::{BaselinePipeline, Pipeline};
use sat::{solve_cnf, Budget, SolverConfig};
use std::fmt::Write as _;
use std::time::Instant;
use sweep::{fraig, FraigParams};
use workloads::cnf_gen::{pigeonhole, random_2sat, random_3sat};
use workloads::datapath::{carry_lookahead_adder, ripple_carry_adder};
use workloads::lec::miter;
use workloads::random_aig::{random_aig, RandomAigParams};

struct SolverRow {
    name: &'static str,
    wall_s: f64,
    propagations: u64,
    conflicts: u64,
    props_per_sec: f64,
}

fn time_solver(name: &'static str, f: &Cnf, cfg: SolverConfig, reps: usize) -> SolverRow {
    // One warm-up run, then `reps` timed runs.
    let _ = solve_cnf(f, cfg.clone(), Budget::conflicts(2_000_000));
    let start = Instant::now();
    let mut propagations = 0u64;
    let mut conflicts = 0u64;
    for _ in 0..reps {
        let (_, stats) = solve_cnf(f, cfg.clone(), Budget::conflicts(2_000_000));
        propagations += stats.propagations;
        conflicts += stats.conflicts;
    }
    let wall_s = start.elapsed().as_secs_f64();
    SolverRow {
        name,
        wall_s,
        propagations,
        conflicts,
        props_per_sec: propagations as f64 / wall_s.max(1e-9),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_hotpath.json", |s| s.as_str());

    let (php_holes, sat_vars, twosat_vars, adder_bits, solver_reps) = if smoke {
        (5, 40, 2_000, 4, 1)
    } else {
        (8, 150, 120_000, 12, 3)
    };

    // --- CDCL propagation kernel ---------------------------------------
    let lec_cnf = {
        let a = ripple_carry_adder(adder_bits);
        let b = carry_lookahead_adder(adder_bits);
        BaselinePipeline.preprocess(&miter(&a.aig, &b.aig)).cnf
    };
    let solver_rows = [
        time_solver(
            "php",
            &pigeonhole(php_holes),
            SolverConfig::kissat_like(),
            solver_reps,
        ),
        time_solver(
            "random3sat",
            &random_3sat(sat_vars, 4.2, 3),
            SolverConfig::kissat_like(),
            solver_reps,
        ),
        // All-binary workload: propagation runs entirely in the solver's
        // inline binary-watcher tier (ratio just under the 2-SAT
        // threshold keeps it SAT with long implication chains).
        time_solver(
            "random2sat",
            &random_2sat(twosat_vars, 0.95, 9),
            SolverConfig::kissat_like(),
            solver_reps,
        ),
        time_solver(
            "lec_miter",
            &lec_cnf,
            SolverConfig::cadical_like(),
            solver_reps,
        ),
    ];

    // --- bit-parallel resimulation kernel ------------------------------
    let (sim_gates, sim_words, sim_reps) = if smoke { (500, 8, 2) } else { (20_000, 64, 10) };
    let g = random_aig(
        &RandomAigParams {
            n_pis: 64,
            n_gates: sim_gates,
            n_pos: 8,
            ..RandomAigParams::default()
        },
        0xC0FFEE,
    );
    let mut sigs = aig::sim::SimVectors::new();
    aig::sim::random_signatures_into(&g, sim_words, 1, &mut sigs); // warm-up
    let sim_start = Instant::now();
    let mut checksum = 0u64;
    for rep in 0..sim_reps {
        aig::sim::random_signatures_into(&g, sim_words, rep as u64, &mut sigs);
        checksum ^= sigs.row(g.num_nodes() - 1).iter().fold(0, |a, &w| a ^ w);
    }
    let sim_wall = sim_start.elapsed().as_secs_f64();
    let words_simulated = (g.num_nodes() * sim_words * sim_reps) as u64;
    let words_per_sec = words_simulated as f64 / sim_wall.max(1e-9);

    // --- fraig (sweep) kernel ------------------------------------------
    let fraig_bits = if smoke { 4 } else { 16 };
    let fg = {
        let a = ripple_carry_adder(fraig_bits);
        let b = carry_lookahead_adder(fraig_bits);
        miter(&a.aig, &b.aig)
    };
    let fraig_start = Instant::now();
    let out = fraig(&fg, &FraigParams::default());
    let fraig_wall = fraig_start.elapsed().as_secs_f64();

    // --- report ---------------------------------------------------------
    let total_props: u64 = solver_rows.iter().map(|r| r.propagations).sum();
    let total_solver_wall: f64 = solver_rows.iter().map(|r| r.wall_s).sum();
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    json.push_str("  \"solver\": [\n");
    for (i, r) in solver_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"wall_s\": {:.6}, \"propagations\": {}, \"conflicts\": {}, \"props_per_sec\": {:.0}}}{}",
            r.name,
            r.wall_s,
            r.propagations,
            r.conflicts,
            r.props_per_sec,
            if i + 1 < solver_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"sim\": {{\"nodes\": {}, \"words\": {}, \"reps\": {}, \"wall_s\": {:.6}, \"words_simulated\": {}, \"words_per_sec\": {:.0}, \"checksum\": {}}},",
        g.num_nodes(),
        sim_words,
        sim_reps,
        sim_wall,
        words_simulated,
        words_per_sec,
        checksum
    );
    let _ = writeln!(
        json,
        "  \"fraig\": {{\"bits\": {}, \"wall_s\": {:.6}, \"sat_calls\": {}, \"proved\": {}, \"disproved\": {}, \"rounds\": {}, \"ands_out\": {}}},",
        fraig_bits,
        fraig_wall,
        out.stats.sat_calls,
        out.stats.proved,
        out.stats.disproved,
        out.stats.rounds,
        out.aig.num_ands()
    );
    let _ = writeln!(
        json,
        "  \"totals\": {{\"wall_s\": {:.6}, \"propagations_per_sec\": {:.0}, \"words_per_sec\": {:.0}}}",
        total_solver_wall + sim_wall + fraig_wall,
        total_props as f64 / total_solver_wall.max(1e-9),
        words_per_sec
    );
    json.push_str("}\n");

    std::fs::write(out_path, &json).expect("write BENCH_hotpath.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
