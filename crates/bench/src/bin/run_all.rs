//! Runs the complete evaluation — Table I, Fig. 4(a), Fig. 4(c), Fig. 5 —
//! and prints a consolidated report (the source of EXPERIMENTS.md).
//!
//! ```text
//! CSAT_SCALE=standard cargo run --release -p bench --bin run_all
//! ```

use bench::experiments::{fig4, fig5, render_arms, render_table1, table1, trained_agent, Scale};

fn main() {
    let scale = Scale::from_env(Scale::standard());
    let t0 = std::time::Instant::now();
    println!("scale: {scale:?}\n");

    println!("==================== Table I ====================");
    print!("{}", render_table1(&table1(&scale)));

    println!("\ntraining RL agent ({} episodes)...", scale.episodes);
    let agent = trained_agent(&scale);

    for (fig, solver) in [("4(a)", "kissat"), ("4(c)", "cadical")] {
        println!("\n==================== Fig. {fig} ({solver}-like) ====================");
        let arms = fig4(&scale, solver, Some(agent.clone()));
        print!("{}", render_arms(&arms, scale.penalty_secs));
        let base = arms[0].total_secs(scale.penalty_secs);
        let comp = arms[1].total_secs(scale.penalty_secs);
        let ours = arms[2].total_secs(scale.penalty_secs);
        println!(
            "reduction vs Baseline: {:.1}%   vs Comp.: {:.1}%",
            100.0 * (1.0 - ours / base),
            100.0 * (1.0 - ours / comp)
        );
    }

    println!("\n==================== Fig. 5 (ablation) ====================");
    let arms = fig5(&scale, Some(agent));
    print!("{}", render_arms(&arms, scale.penalty_secs));
    let ours = arms[0].total_secs(scale.penalty_secs);
    println!(
        "w/o RL: {:+.1}%   C. Mapper: {:+.1}% (relative to Ours)",
        100.0 * (arms[1].total_secs(scale.penalty_secs) / ours - 1.0),
        100.0 * (arms[2].total_secs(scale.penalty_secs) / ours - 1.0)
    );

    println!("\ntotal harness time: {:.1?}", t0.elapsed());
}
