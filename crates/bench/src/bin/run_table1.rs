//! Regenerates **Table I** — statistics of the RL training dataset.
//!
//! ```text
//! CSAT_SCALE=standard cargo run --release -p bench --bin run_table1
//! ```

use bench::experiments::{render_table1, table1, Scale};

fn main() {
    let scale = Scale::from_env(Scale::standard());
    println!("== Table I: statistics of the training dataset ==");
    println!(
        "(scale: {} instances, widths {:?}, budget {} conflicts)\n",
        scale.train_count, scale.train_bits, scale.budget_conflicts
    );
    let rows = table1(&scale);
    print!("{}", render_table1(&rows));
    println!("\npaper (200 industrial instances) for reference:");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "", "Avg.", "Std.", "Min.", "Max."
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "# Gates", 4299.06, 4328.16, 60, 24178
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "# PIs", 43.66, 25.17, 6, 102
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "Depth", 66.43, 19.98, 18, 138
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "# Clauses", 10687.28, 10801.96, 131, 60294
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "Time (s)", 2.01, 1.96, 0.04, 6.68
    );
}
