//! Regenerates **Fig. 4** — runtime comparison of Baseline vs. Comp. vs.
//! Ours under the two solver presets (4a: Kissat-like, 4c: CaDiCaL-like).
//!
//! ```text
//! CSAT_SCALE=standard cargo run --release -p bench --bin run_fig4 -- --solver kissat
//! cargo run --release -p bench --bin run_fig4 -- --solver both --csv fig4.csv
//! ```

use bench::experiments::{fig4, records_to_csv, render_arms, trained_agent, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let solver = flag_value(&args, "--solver").unwrap_or_else(|| "both".to_string());
    let csv_path = flag_value(&args, "--csv");
    let scale = Scale::from_env(Scale::standard());

    println!(
        "== Fig. 4: runtime comparison ({} test instances, budget {} conflicts, TO penalty {:.0}s) ==",
        scale.test_count, scale.budget_conflicts, scale.penalty_secs
    );
    println!("training RL agent ({} episodes)...", scale.episodes);
    let agent = trained_agent(&scale);

    let mut all_csv = String::new();
    let solvers: Vec<&str> = match solver.as_str() {
        "both" => vec!["kissat", "cadical"],
        s => vec![s],
    };
    for s in solvers {
        let fig = if s == "kissat" { "4(a)" } else { "4(c)" };
        println!("\n-- Fig. {fig}: solver preset '{s}' --");
        let arms = fig4(&scale, s, Some(agent.clone()));
        print!("{}", render_arms(&arms, scale.penalty_secs));
        let base = arms[0].total_secs(scale.penalty_secs);
        let ours = arms[2].total_secs(scale.penalty_secs);
        let comp = arms[1].total_secs(scale.penalty_secs);
        println!(
            "reduction vs Baseline: {:.1}%   vs Comp.: {:.1}%   (paper, CaDiCaL: 63.0% / 35.2%)",
            100.0 * (1.0 - ours / base),
            100.0 * (1.0 - ours / comp)
        );
        all_csv.push_str(&records_to_csv(&arms));
    }
    if let Some(path) = csv_path {
        std::fs::write(&path, all_csv).expect("write csv");
        println!("\nrecords written to {path}");
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}
