//! # `checker` — an independent backward RUP/DRAT proof checker
//!
//! Verifies UNSAT certificates produced by the `sat` crate's proof logger
//! (or any DRAT producer) **without sharing a line of solver code**: this
//! crate has its own clause representation, its own two-watched-literal
//! unit propagation, and a deliberately simple backward checking loop in
//! the style of `drat-trim`. The solver is ~3k lines of carefully
//! optimised search; this checker is a few hundred lines of boring code —
//! a soundness bug would have to appear in *both*, independently, to slip
//! a bogus UNSAT verdict through.
//!
//! A proof is a sequence of clause additions and deletions over a fixed
//! original formula (DIMACS `i32` literals throughout). Checking runs
//! backward: replay the additions/deletions to the final state, verify
//! the terminal empty clause follows by unit propagation, then walk the
//! proof in reverse re-verifying — by **r**everse **u**nit **p**ropagation
//! — exactly those lemmas the refutation actually used, marking their
//! antecedents in turn. Lemmas the conflict never touched are skipped,
//! which is what makes backward checking fast; the `CheckOutcome` reports
//! both counts plus the unsatisfiable core.
//!
//! The checker is *strict*: a proof must contain an explicit empty-clause
//! addition (or the formula itself must contain the empty clause). A
//! certificate for an UNSAT-under-assumptions verdict is therefore built
//! by appending each assumption as a unit clause to the formula and
//! closing the proof with an empty clause ([`Proof::close`]).
//!
//! ```
//! use checker::{check, Proof};
//!
//! // (1 ∨ 2)(¬1 ∨ 2)(1 ∨ ¬2)(¬1 ∨ ¬2) is UNSAT.
//! let formula = vec![vec![1, 2], vec![-1, 2], vec![1, -2], vec![-1, -2]];
//! let mut proof = Proof::new();
//! proof.add(vec![2]); // RUP: assume ¬2, propagate to a conflict
//! proof.add(vec![]); // empty clause: units now conflict
//! let outcome = check(&formula, &proof).expect("certificate verifies");
//! assert_eq!(outcome.verified_adds, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::fmt;

/// One proof step: a clause addition, or a deletion when `delete` is set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// True for deletion steps (`d` lines in the DRAT text format).
    pub delete: bool,
    /// The clause, as DIMACS literals (no terminating zero).
    pub lits: Vec<i32>,
}

/// A clausal proof: an ordered list of additions and deletions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Proof {
    /// The steps, in derivation order.
    pub steps: Vec<Step>,
}

impl Proof {
    /// An empty proof.
    pub fn new() -> Proof {
        Proof::default()
    }

    /// Appends a clause-addition step.
    pub fn add(&mut self, lits: Vec<i32>) {
        self.steps.push(Step {
            delete: false,
            lits,
        });
    }

    /// Appends a clause-deletion step.
    pub fn delete(&mut self, lits: Vec<i32>) {
        self.steps.push(Step { delete: true, lits });
    }

    /// Builds a proof from `(delete, lits)` pairs — the shape of the
    /// solver's proof log, without depending on it.
    pub fn from_steps(steps: impl IntoIterator<Item = (bool, Vec<i32>)>) -> Proof {
        Proof {
            steps: steps
                .into_iter()
                .map(|(delete, lits)| Step { delete, lits })
                .collect(),
        }
    }

    /// Appends the terminal empty clause unless one is already present.
    ///
    /// Use when certifying an UNSAT-under-assumptions verdict: the
    /// solver's log then carries no explicit refutation, but formula +
    /// assumption units + lemmas must propagate to a conflict — which is
    /// exactly what checking the appended empty clause asserts.
    pub fn close(&mut self) {
        if !self.steps.iter().any(|s| !s.delete && s.lits.is_empty()) {
            self.add(Vec::new());
        }
    }

    /// Serializes to the textual DRAT format (one zero-terminated clause
    /// per line, deletions prefixed with `d`).
    pub fn to_drat_string(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            if step.delete {
                out.push_str("d ");
            }
            for l in &step.lits {
                out.push_str(&l.to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }

    /// Parses the textual DRAT format. Lines starting with `c` or `s`
    /// are comments; every clause must be terminated by `0`.
    pub fn parse_drat(text: &str) -> Result<Proof, ParseError> {
        let mut proof = Proof::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') || line.starts_with('s') {
                continue;
            }
            let mut tokens = line.split_ascii_whitespace().peekable();
            let delete = tokens.peek() == Some(&"d");
            if delete {
                tokens.next();
            }
            let mut lits = Vec::new();
            let mut terminated = false;
            for tok in tokens {
                if terminated {
                    return Err(ParseError {
                        line: ln + 1,
                        msg: "literals after the terminating 0".into(),
                    });
                }
                let l: i32 = tok.parse().map_err(|_| ParseError {
                    line: ln + 1,
                    msg: format!("bad literal {tok:?}"),
                })?;
                if l == 0 {
                    terminated = true;
                } else {
                    lits.push(l);
                }
            }
            if !terminated {
                return Err(ParseError {
                    line: ln + 1,
                    msg: "clause not terminated by 0".into(),
                });
            }
            proof.steps.push(Step { delete, lits });
        }
        Ok(proof)
    }
}

/// A malformed DRAT text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Why a certificate was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// A literal was zero (reserved as the DIMACS terminator).
    InvalidLiteral,
    /// The proof contains no empty-clause addition and the formula has no
    /// empty clause either — nothing asserts unsatisfiability.
    EmptyClauseMissing,
    /// The terminal empty clause does not follow by unit propagation from
    /// the clauses active at that point.
    EmptyClauseNotRup,
    /// A lemma the refutation depends on is not RUP at its position.
    StepNotRup {
        /// Index into [`Proof::steps`] of the offending addition.
        step: usize,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::InvalidLiteral => write!(f, "literal 0 inside a clause"),
            CheckError::EmptyClauseMissing => {
                write!(f, "proof has no empty-clause addition")
            }
            CheckError::EmptyClauseNotRup => {
                write!(f, "empty clause does not follow by unit propagation")
            }
            CheckError::StepNotRup { step } => {
                write!(f, "proof step {step} is not RUP at its position")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// A successful verification, with its audit trail.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Addition steps re-verified by reverse unit propagation (the
    /// refutation's core lemmas, plus the empty clause).
    pub verified_adds: usize,
    /// Addition steps the refutation never used (backward checking skips
    /// them — they carry no soundness weight).
    pub skipped_adds: usize,
    /// Deletion steps that matched no active clause and were ignored.
    pub ignored_deletes: usize,
    /// Steps after the first empty-clause addition, ignored.
    pub trailing_ignored: usize,
    /// Indices into [`Proof::steps`] of the core additions, ascending.
    pub core_steps: Vec<usize>,
    /// Indices into the formula of the original clauses in the core,
    /// ascending.
    pub core_formula: Vec<usize>,
}

const NO_REASON: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Clause {
    /// Literal set; for watched clauses the first two slots are the
    /// watched literals (propagation permutes, never changes the set).
    lits: Vec<i32>,
    active: bool,
    needed: bool,
    /// Contains both polarities of some variable: never falsifiable, so
    /// it is excluded from propagation entirely.
    tautology: bool,
}

/// Replayed effect of one proof step (formula clauses are not actions).
#[derive(Clone, Copy, Debug)]
enum Action {
    /// Clause `.0` was added by proof step `.1`.
    Add(usize, usize),
    /// Clause `.0` was deleted.
    Delete(usize),
}

enum Conflict {
    /// Every literal of this clause is false.
    Clause(usize),
    /// This literal was to be assumed false but is propagated true — the
    /// conflict is its reason chain.
    Lit(i32),
}

struct Checker {
    clauses: Vec<Clause>,
    n_formula: usize,
    /// Clause ids watching each literal, indexed by `lit_index`. Entries
    /// of inactive clauses are kept in place and skipped (lazy removal);
    /// an active clause has exactly two entries, on `lits[0]`/`lits[1]`.
    watches: Vec<Vec<usize>>,
    /// Ids of unit clauses, in creation order (sources of the root trail).
    units: Vec<usize>,
    /// Assignment by variable: 0 undef, 1 true, -1 false.
    assign: Vec<i8>,
    /// Reason clause id per variable, `NO_REASON` for assumptions.
    reason: Vec<usize>,
    trail: Vec<i32>,
    qhead: usize,
    /// Conflict reached by propagating the active units alone. While set,
    /// every RUP check succeeds trivially from this conflict.
    root_confl: Option<usize>,
    /// Scratch for core marking.
    seen_var: Vec<bool>,
}

fn lit_index(l: i32) -> usize {
    2 * l.unsigned_abs() as usize + usize::from(l < 0)
}

fn var_of(l: i32) -> usize {
    l.unsigned_abs() as usize
}

/// Sorted, deduplicated literal set — the canonical clause key.
fn canonical(lits: &[i32]) -> Vec<i32> {
    let mut v = lits.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

fn is_tautology(canonical: &[i32]) -> bool {
    // Sorting puts -v immediately before v.
    canonical.windows(2).any(|w| w[0] == -w[1])
}

impl Checker {
    fn new(max_var: usize) -> Checker {
        Checker {
            clauses: Vec::new(),
            n_formula: 0,
            watches: vec![Vec::new(); 2 * (max_var + 1)],
            units: Vec::new(),
            assign: vec![0; max_var + 1],
            reason: vec![NO_REASON; max_var + 1],
            trail: Vec::new(),
            qhead: 0,
            root_confl: None,
            seen_var: vec![false; max_var + 1],
        }
    }

    fn value(&self, l: i32) -> i8 {
        let a = self.assign[var_of(l)];
        if l < 0 {
            -a
        } else {
            a
        }
    }

    fn enqueue(&mut self, l: i32, reason: usize) {
        debug_assert_eq!(self.value(l), 0);
        self.assign[var_of(l)] = if l < 0 { -1 } else { 1 };
        self.reason[var_of(l)] = reason;
        self.trail.push(l);
    }

    /// Creates a clause (canonical literals), wiring watches and the unit
    /// list. The caller sets activity via the forward replay.
    fn create(&mut self, can: Vec<i32>, active: bool) -> usize {
        let id = self.clauses.len();
        let tautology = is_tautology(&can);
        if !tautology && can.len() >= 2 {
            self.watches[lit_index(can[0])].push(id);
            self.watches[lit_index(can[1])].push(id);
        }
        if !tautology && can.len() == 1 {
            self.units.push(id);
        }
        self.clauses.push(Clause {
            lits: can,
            active,
            needed: false,
            tautology,
        });
        id
    }

    /// Standard two-watched-literal propagation over the active clauses,
    /// starting at the current queue head.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = -p;
            let wi = lit_index(false_lit);
            let mut ws = std::mem::take(&mut self.watches[wi]);
            let mut i = 0;
            let mut j = 0;
            let mut confl = None;
            'clauses: while i < ws.len() {
                let cid = ws[i];
                i += 1;
                if !self.clauses[cid].active {
                    // Lazy removal: keep the stale entry, skip the clause.
                    ws[j] = cid;
                    j += 1;
                    continue;
                }
                if self.clauses[cid].lits[0] == false_lit {
                    self.clauses[cid].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cid].lits[1], false_lit);
                let first = self.clauses[cid].lits[0];
                if self.value(first) == 1 {
                    ws[j] = cid;
                    j += 1;
                    continue;
                }
                for k in 2..self.clauses[cid].lits.len() {
                    if self.value(self.clauses[cid].lits[k]) != -1 {
                        self.clauses[cid].lits.swap(1, k);
                        let nw = self.clauses[cid].lits[1];
                        self.watches[lit_index(nw)].push(cid);
                        continue 'clauses; // entry moved off this list
                    }
                }
                ws[j] = cid;
                j += 1;
                if self.value(first) == -1 {
                    confl = Some(cid);
                    break;
                }
                self.enqueue(first, cid);
            }
            if confl.is_some() {
                while i < ws.len() {
                    ws[j] = ws[i];
                    j += 1;
                    i += 1;
                }
            }
            ws.truncate(j);
            self.watches[wi] = ws;
            if confl.is_some() {
                return confl;
            }
        }
        None
    }

    /// Recomputes the persistent root trail: propagate the active unit
    /// clauses to fixpoint (or to a conflict).
    fn root_rebuild(&mut self) {
        for i in 0..self.trail.len() {
            let l = self.trail[i];
            self.assign[var_of(l)] = 0;
            self.reason[var_of(l)] = NO_REASON;
        }
        self.trail.clear();
        self.qhead = 0;
        self.root_confl = None;
        for ui in 0..self.units.len() {
            let cid = self.units[ui];
            if !self.clauses[cid].active {
                continue;
            }
            let l = self.clauses[cid].lits[0];
            match self.value(l) {
                1 => {}
                0 => self.enqueue(l, cid),
                _ => {
                    // Two contradictory active units: the unit clause
                    // itself is the (all-false) conflict.
                    self.root_confl = Some(cid);
                    break;
                }
            }
        }
        if self.root_confl.is_none() {
            self.root_confl = self.propagate();
        }
    }

    /// Deactivates a clause (reverse of an addition). Rebuilds the root
    /// trail when the clause supported it.
    fn deactivate(&mut self, cid: usize) {
        self.clauses[cid].active = false;
        let supports_root = self.root_confl == Some(cid)
            || self.clauses[cid]
                .lits
                .iter()
                .any(|&l| self.assign[var_of(l)] != 0 && self.reason[var_of(l)] == cid);
        if supports_root {
            self.root_rebuild();
        }
    }

    /// Reactivates a clause (reverse of a deletion), repairing its watch
    /// entries for the current root assignment and extending the root
    /// trail if the clause is unit or false under it.
    fn reactivate(&mut self, cid: usize) {
        self.clauses[cid].active = true;
        if self.clauses[cid].tautology || self.clauses[cid].lits.len() < 2 {
            if self.clauses[cid].lits.len() == 1 && self.root_confl.is_none() {
                let l = self.clauses[cid].lits[0];
                match self.value(l) {
                    1 => {}
                    0 => {
                        self.enqueue(l, cid);
                        self.root_confl = self.propagate();
                    }
                    _ => self.root_confl = Some(cid),
                }
            }
            return;
        }
        // Drop the stale entries (placed when the clause was deleted),
        // then watch two sound slots: a true or undef literal if one
        // exists, falling back to false ones.
        for slot in 0..2 {
            let l = self.clauses[cid].lits[slot];
            self.watches[lit_index(l)].retain(|&c| c != cid);
        }
        let rank = |v: i8| match v {
            -1 => 2,
            _ => 0, // true and undef are both sound to watch
        };
        for slot in 0..2 {
            let best = (slot..self.clauses[cid].lits.len())
                .min_by_key(|&k| rank(self.value(self.clauses[cid].lits[k])))
                .expect("len >= 2");
            self.clauses[cid].lits.swap(slot, best);
        }
        for slot in 0..2 {
            let l = self.clauses[cid].lits[slot];
            self.watches[lit_index(l)].push(cid);
        }
        if self.root_confl.is_some() {
            return;
        }
        // Extend the root trail if the clause is unit/false under it.
        let first = self.clauses[cid].lits[0];
        let second = self.clauses[cid].lits[1];
        match (self.value(first), self.value(second)) {
            (-1, -1) => self.root_confl = Some(cid),
            (0, -1) => {
                self.enqueue(first, cid);
                self.root_confl = self.propagate();
            }
            _ => {}
        }
    }

    /// Verifies `lits` is RUP under the current root state: assume every
    /// literal false, propagate, demand a conflict. Marks the conflict's
    /// antecedents into the core on success; always restores the root
    /// trail.
    fn rup_check(&mut self, lits: &[i32]) -> bool {
        if let Some(c) = self.root_confl {
            self.mark_conflict(Conflict::Clause(c));
            return true;
        }
        let mark = self.trail.len();
        debug_assert_eq!(self.qhead, mark);
        let mut confl = None;
        for &l in lits {
            match self.value(-l) {
                1 => {} // already assumed / implied
                0 => self.enqueue(-l, NO_REASON),
                _ => {
                    // ¬l is false: l is true under root propagation, so
                    // the clause is entailed via l's reason chain.
                    confl = Some(Conflict::Lit(l));
                    break;
                }
            }
        }
        if confl.is_none() {
            confl = self.propagate().map(Conflict::Clause);
        }
        let ok = confl.is_some();
        if let Some(c) = confl {
            self.mark_conflict(c);
        }
        while self.trail.len() > mark {
            let l = self.trail.pop().unwrap();
            self.assign[var_of(l)] = 0;
            self.reason[var_of(l)] = NO_REASON;
        }
        self.qhead = mark;
        ok
    }

    /// Marks the conflict clause and the transitive reason clauses of
    /// every variable it involves as needed (core membership).
    fn mark_conflict(&mut self, confl: Conflict) {
        let mut queue: Vec<usize> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        let push_var = |v: usize, seen: &mut Vec<bool>, queue: &mut Vec<usize>| {
            if !seen[v] {
                seen[v] = true;
                queue.push(v);
            }
        };
        match confl {
            Conflict::Clause(cid) => {
                self.clauses[cid].needed = true;
                for i in 0..self.clauses[cid].lits.len() {
                    let v = var_of(self.clauses[cid].lits[i]);
                    push_var(v, &mut self.seen_var, &mut queue);
                }
            }
            Conflict::Lit(l) => {
                push_var(var_of(l), &mut self.seen_var, &mut queue);
            }
        }
        touched.extend_from_slice(&queue);
        while let Some(v) = queue.pop() {
            let r = self.reason[v];
            if r == NO_REASON {
                continue;
            }
            self.clauses[r].needed = true;
            for i in 0..self.clauses[r].lits.len() {
                let u = var_of(self.clauses[r].lits[i]);
                if !self.seen_var[u] {
                    self.seen_var[u] = true;
                    queue.push(u);
                    touched.push(u);
                }
            }
        }
        for v in touched {
            self.seen_var[v] = false;
        }
    }
}

/// Checks a clausal proof of unsatisfiability for `formula`.
///
/// `formula` and the proof use DIMACS literal conventions (`±var` as
/// nonzero `i32`). On success the outcome reports what was verified and
/// the unsatisfiable core; any structural or semantic defect rejects the
/// certificate with a [`CheckError`].
pub fn check(formula: &[Vec<i32>], proof: &Proof) -> Result<CheckOutcome, CheckError> {
    let mut max_var = 0usize;
    for c in formula {
        for &l in c {
            if l == 0 {
                return Err(CheckError::InvalidLiteral);
            }
            max_var = max_var.max(var_of(l));
        }
    }
    for s in &proof.steps {
        for &l in &s.lits {
            if l == 0 {
                return Err(CheckError::InvalidLiteral);
            }
            max_var = max_var.max(var_of(l));
        }
    }

    let mut ck = Checker::new(max_var);
    let mut outcome = CheckOutcome::default();

    // Forward replay: load the formula, apply every step up to the first
    // empty-clause addition, resolving deletions against the most recent
    // active clause of the same literal set.
    let mut shape: HashMap<Vec<i32>, Vec<usize>> = HashMap::new();
    for (fi, c) in formula.iter().enumerate() {
        let can = canonical(c);
        if can.is_empty() {
            // The formula contains the empty clause: trivially UNSAT.
            outcome.core_formula.push(fi);
            return Ok(outcome);
        }
        let id = ck.create(can.clone(), true);
        shape.entry(can).or_default().push(id);
    }
    ck.n_formula = ck.clauses.len();

    let mut actions: Vec<Action> = Vec::new();
    let mut empty_step: Option<usize> = None;
    for (si, step) in proof.steps.iter().enumerate() {
        let can = canonical(&step.lits);
        if step.delete {
            match shape.get_mut(&can).and_then(Vec::pop) {
                Some(id) => {
                    ck.clauses[id].active = false;
                    actions.push(Action::Delete(id));
                }
                None => outcome.ignored_deletes += 1,
            }
        } else {
            if can.is_empty() {
                empty_step = Some(si);
                outcome.trailing_ignored = proof.steps.len() - si - 1;
                break;
            }
            let id = ck.create(can.clone(), true);
            shape.entry(can).or_default().push(id);
            actions.push(Action::Add(id, si));
        }
    }
    let empty_step = empty_step.ok_or(CheckError::EmptyClauseMissing)?;

    // The terminal empty clause: the active clauses must propagate to a
    // conflict on their own.
    ck.root_rebuild();
    match ck.root_confl {
        Some(c) => ck.mark_conflict(Conflict::Clause(c)),
        None => return Err(CheckError::EmptyClauseNotRup),
    }
    outcome.verified_adds += 1;
    outcome.core_steps.push(empty_step);

    // Backward pass: undo each action; re-verify the additions the
    // refutation marked as needed, which marks their own antecedents.
    for act in actions.into_iter().rev() {
        match act {
            Action::Delete(id) => ck.reactivate(id),
            Action::Add(id, si) => {
                let needed = ck.clauses[id].needed;
                ck.deactivate(id);
                if !needed {
                    outcome.skipped_adds += 1;
                    continue;
                }
                let lits = ck.clauses[id].lits.clone();
                if !ck.rup_check(&lits) {
                    return Err(CheckError::StepNotRup { step: si });
                }
                outcome.verified_adds += 1;
                outcome.core_steps.push(si);
            }
        }
    }
    for (fi, c) in ck.clauses[..ck.n_formula].iter().enumerate() {
        if c.needed {
            outcome.core_formula.push(fi);
        }
    }
    outcome.core_steps.sort_unstable();
    Ok(outcome)
}

/// Convenience wrapper: certifies an UNSAT-under-assumptions verdict by
/// appending each assumption as a unit clause and closing the proof with
/// the terminal empty clause.
pub fn check_with_assumptions(
    formula: &[Vec<i32>],
    assumptions: &[i32],
    proof: &Proof,
) -> Result<CheckOutcome, CheckError> {
    let mut f = formula.to_vec();
    f.extend(assumptions.iter().map(|&a| vec![a]));
    let mut p = proof.clone();
    p.close();
    check(&f, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_unsat() -> Vec<Vec<i32>> {
        // (1∨2)(¬1∨2)(1∨¬2)(¬1∨¬2)
        vec![vec![1, 2], vec![-1, 2], vec![1, -2], vec![-1, -2]]
    }

    fn xor_proof() -> Proof {
        let mut p = Proof::new();
        p.add(vec![2]);
        p.add(vec![]);
        p
    }

    #[test]
    fn accepts_a_valid_refutation() {
        let out = check(&xor_unsat(), &xor_proof()).unwrap();
        assert_eq!(out.verified_adds, 2);
        assert_eq!(out.skipped_adds, 0);
        assert_eq!(out.core_steps, vec![0, 1]);
        assert!(!out.core_formula.is_empty());
    }

    #[test]
    fn accepts_with_deletion_steps() {
        let mut p = Proof::new();
        p.add(vec![2]);
        p.delete(vec![1, 2]);
        p.add(vec![]);
        check(&xor_unsat(), &p).unwrap();
    }

    #[test]
    fn skips_unused_lemmas() {
        let mut p = Proof::new();
        p.add(vec![2]);
        p.add(vec![2, 3]); // never used by the refutation
        p.add(vec![]);
        let out = check(&xor_unsat(), &p).unwrap();
        assert_eq!(out.skipped_adds, 1);
        assert_eq!(out.core_steps, vec![0, 2]);
    }

    #[test]
    fn rejects_without_empty_clause() {
        let mut p = Proof::new();
        p.add(vec![2]);
        assert_eq!(check(&xor_unsat(), &p), Err(CheckError::EmptyClauseMissing));
    }

    #[test]
    fn rejects_empty_clause_that_does_not_follow() {
        // Satisfiable formula: the empty clause can never be RUP.
        let formula = vec![vec![1], vec![-1, 2]];
        let mut p = Proof::new();
        p.add(vec![2]); // RUP (1 propagates 2), but the formula is SAT
        p.add(vec![]);
        assert_eq!(check(&formula, &p), Err(CheckError::EmptyClauseNotRup));
    }

    #[test]
    fn rejects_non_rup_core_lemma() {
        // (1∨2)(¬1∨2): adding ¬2 is not RUP (assuming 2 satisfies all),
        // and the empty clause needs it.
        let formula = vec![vec![1, 2], vec![-1, 2]];
        let mut p = Proof::new();
        p.add(vec![-2]);
        p.add(vec![]);
        assert_eq!(check(&formula, &p), Err(CheckError::StepNotRup { step: 0 }));
    }

    #[test]
    fn empty_clause_in_formula_is_trivially_unsat() {
        let formula = vec![vec![1, 2], vec![]];
        let out = check(&formula, &Proof::new()).unwrap();
        assert_eq!(out.core_formula, vec![1]);
    }

    #[test]
    fn rejects_literal_zero() {
        assert_eq!(
            check(&[vec![1, 0]], &Proof::new()),
            Err(CheckError::InvalidLiteral)
        );
    }

    #[test]
    fn assumption_certificates() {
        // 1 → 2 is consistent, but assuming 1 and ¬2 is not.
        let formula = vec![vec![-1, 2]];
        let out = check_with_assumptions(&formula, &[1, -2], &Proof::new()).unwrap();
        assert_eq!(out.verified_adds, 1);
        // Without the assumptions the same certificate fails.
        assert!(check_with_assumptions(&formula, &[], &Proof::new()).is_err());
    }

    #[test]
    fn deleted_clause_is_really_gone() {
        // Deleting (¬1∨2) before the empty clause breaks the refutation
        // of (1)(¬1∨2)(¬2): units 1,¬2 alone no longer conflict.
        let formula = vec![vec![1], vec![-1, 2], vec![-2]];
        let mut ok = Proof::new();
        ok.add(vec![]);
        check(&formula, &ok).unwrap();
        let mut broken = Proof::new();
        broken.delete(vec![-1, 2]);
        broken.add(vec![]);
        assert_eq!(check(&formula, &broken), Err(CheckError::EmptyClauseNotRup));
    }

    #[test]
    fn duplicate_literals_are_canonicalized() {
        // (1 1) is the unit (1); with (¬1) the empty clause is RUP.
        let formula = vec![vec![1, 1], vec![-1]];
        let mut p = Proof::new();
        p.add(vec![]);
        check(&formula, &p).unwrap();
    }

    #[test]
    fn tautologies_are_inert() {
        let formula = vec![vec![1, -1], vec![2], vec![-2]];
        let mut p = Proof::new();
        p.add(vec![]);
        let out = check(&formula, &p).unwrap();
        assert_eq!(out.core_formula, vec![1, 2]);
    }

    #[test]
    fn drat_round_trip() {
        let mut p = Proof::new();
        p.add(vec![2, -3]);
        p.delete(vec![1, 2]);
        p.add(vec![]);
        let text = p.to_drat_string();
        assert_eq!(text, "2 -3 0\nd 1 2 0\n0\n");
        assert_eq!(Proof::parse_drat(&text).unwrap(), p);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Proof::parse_drat("1 2\n").is_err()); // no terminator
        assert!(Proof::parse_drat("1 x 0\n").is_err()); // bad token
        assert!(Proof::parse_drat("1 0 2 0\n").is_err()); // trailing lits
        let p = Proof::parse_drat("c comment\ns comment\n\nd 1 0\n").unwrap();
        assert_eq!(p.steps.len(), 1);
        assert!(p.steps[0].delete);
    }

    #[test]
    fn close_is_idempotent() {
        let mut p = Proof::new();
        p.close();
        p.close();
        assert_eq!(p.steps.len(), 1);
        assert!(p.steps[0].lits.is_empty());
    }
}
